(* The shippable description of one pipeline run: every raw input byte
   and verdict-affecting flag, as one JSON value.

   Closures cannot cross a socket, so the fleet protocol ships *inputs*
   and has each worker replan: [build] parses the shipped texts exactly
   as the CLI parses the files they came from (same file-name strings,
   so diagnostic locations match byte-for-byte) and calls
   [Pipeline.plan_tasks], which is deterministic in these inputs plus
   [skip].  Dispatcher and workers therefore agree on the task array —
   index [i] means the same closure everywhere — and [hash] (a digest of
   the canonical JSON rendering) is the protocol's proof of that
   agreement: it rides on every task message and result, and a mismatch
   means the peer planned a different run. *)

module Json = Llhsc.Json

type input = { file : string; text : string }

type t = {
  core : input;
  deltas : input;
  model : string; (* feature model source text *)
  schemas : string list; (* schema texts, pre-sorted by file name *)
  files : (string * string) list; (* /include/ name -> contents *)
  vms : string list list;
  exclusive : string list;
  certify : bool;
  retry : int option;
  max_conflicts : int option;
  solver_timeout : float option;
  unsound : string option;
  skip : string list; (* products the dispatcher replayed from its journal *)
}

(* --- JSON ------------------------------------------------------------------- *)

let strs l = Json.List (List.map (fun s -> Json.Str s) l)
let opt_int = function None -> Json.Null | Some n -> Json.Int n
let opt_str = function None -> Json.Null | Some s -> Json.Str s

let input_to_json i =
  Json.Obj [ ("file", Json.Str i.file); ("text", Json.Str i.text) ]

(* Field order is fixed: [hash] digests this rendering, so it must be a
   canonical function of the record. *)
let to_json s =
  Json.Obj
    [
      ("core", input_to_json s.core);
      ("deltas", input_to_json s.deltas);
      ("model", Json.Str s.model);
      ("schemas", strs s.schemas);
      ("files", Json.Obj (List.map (fun (n, c) -> (n, Json.Str c)) s.files));
      ("vms", Json.List (List.map strs s.vms));
      ("exclusive", strs s.exclusive);
      ("certify", Json.Bool s.certify);
      ("retry", opt_int s.retry);
      ("max_conflicts", opt_int s.max_conflicts);
      ( "solver_timeout",
        (* Json has no floats; %h round-trips the exact bits. *)
        match s.solver_timeout with
        | None -> Json.Null
        | Some f -> Json.Str (Printf.sprintf "%h" f) );
      ("unsound", opt_str s.unsound);
      ("skip", strs s.skip);
    ]

let ( let* ) = Option.bind

let input_of_json j =
  let* file = Option.bind (Json.member "file" j) Json.to_str in
  let* text = Option.bind (Json.member "text" j) Json.to_str in
  Some { file; text }

let str_list_of name j = Option.bind (Json.member name j) Json.to_str_list

let opt_int_of name j =
  match Json.member name j with
  | None | Some Json.Null -> Some None
  | Some v -> Option.map Option.some (Json.to_int v)

let opt_str_of name j =
  match Json.member name j with
  | None | Some Json.Null -> Some None
  | Some v -> Option.map Option.some (Json.to_str v)

let of_json j =
  let* core = Option.bind (Json.member "core" j) input_of_json in
  let* deltas = Option.bind (Json.member "deltas" j) input_of_json in
  let* model = Option.bind (Json.member "model" j) Json.to_str in
  let* schemas = str_list_of "schemas" j in
  let* files =
    match Json.member "files" j with
    | Some (Json.Obj kvs) ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (n, Json.Str c) :: rest -> go ((n, c) :: acc) rest
        | _ -> None
      in
      go [] kvs
    | _ -> None
  in
  let* vms =
    let* l = Option.bind (Json.member "vms" j) Json.to_list in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | v :: rest -> (
        match Json.to_str_list v with
        | Some fs -> go (fs :: acc) rest
        | None -> None)
    in
    go [] l
  in
  let* exclusive = str_list_of "exclusive" j in
  let* certify = Option.bind (Json.member "certify" j) Json.to_bool in
  let* retry = opt_int_of "retry" j in
  let* max_conflicts = opt_int_of "max_conflicts" j in
  let* solver_timeout =
    match Json.member "solver_timeout" j with
    | None | Some Json.Null -> Some None
    | Some (Json.Str s) -> Option.map Option.some (float_of_string_opt s)
    | Some _ -> None
  in
  let* unsound = opt_str_of "unsound" j in
  let* skip = str_list_of "skip" j in
  Some
    { core; deltas; model; schemas; files; vms; exclusive; certify; retry;
      max_conflicts; solver_timeout; unsound; skip }

let hash s = Digest.to_hex (Digest.string (Json.to_string (to_json s)))

(* Wire form: the plain canonical JSON, or — under [dispatch --compress]
   — an envelope [{"z": "<base64(lz77(canonical json))>"}].  The spec
   hash is always over the uncompressed canonical JSON, so compressed
   and uncompressed transports agree on spec identity and a worker's
   task cache hits either way.  A plain spec can never collide with the
   envelope: [of_json] requires a "core" member, which the envelope
   lacks. *)

let to_wire ?(compress = false) s =
  let j = to_json s in
  if compress then
    Json.Obj [ ("z", Json.Str (Lz.to_base64 (Lz.compress (Json.to_string j)))) ]
  else j

let of_wire j =
  match Json.member "z" j with
  | Some (Json.Str b64) ->
    Option.bind (Lz.of_base64 b64) (fun packed ->
        Option.bind (Lz.decompress packed) (fun txt ->
            match Json.parse txt with Ok j' -> of_json j' | Error _ -> None))
  | Some _ -> None
  | None -> of_json j

(* --- flag decoding (mirrors the CLI's budget_of/retry_of/parse_unsound) ----- *)

let budget s =
  match (s.max_conflicts, s.solver_timeout) with
  | None, None -> None
  | mc, tl -> Some (Sat.Solver.budget ?max_conflicts:mc ?time_limit:tl ())

let escalation s =
  match s.retry with
  | None -> None
  | Some n when n >= 2 -> Some (Smt.Escalation.ladder ~attempts:n ())
  | Some n -> failwith (Printf.sprintf "bad retry attempt count %d in spec" n)

let parse_unsound spec =
  match String.index_opt spec ':' with
  | Some i -> (
    let kind = String.sub spec 0 i in
    let n =
      match
        int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
      with
      | Some n when n > 0 -> n
      | _ -> failwith (Printf.sprintf "bad unsound period in %S" spec)
    in
    match kind with
    | "drop-lit" -> Sat.Solver.Drop_learnt_literal n
    | "flip-model" -> Sat.Solver.Flip_model_bit n
    | "mute-proof" -> Sat.Solver.Mute_proof_step n
    | "force-unknown" -> Sat.Solver.Force_unknown n
    | k -> failwith (Printf.sprintf "unknown unsound kind %S" k))
  | None -> failwith (Printf.sprintf "bad unsound spec %S" spec)

(* --- replanning -------------------------------------------------------------- *)

let build s =
  try
    (* Includes resolve by the literal /include/ string against the
       shipped file set — the same key the dispatcher used when it
       shipped them, so resolution cannot silently diverge. *)
    let loader file = List.assoc_opt file s.files in
    let core =
      match
        Devicetree.Tree.of_source_diags ~loader ~file:s.core.file s.core.text
      with
      | Ok tree -> tree
      | Error _ -> failwith (Printf.sprintf "unparsable core %s" s.core.file)
    in
    let deltas = Delta.Parse.parse ~file:s.deltas.file s.deltas.text in
    let model = Featuremodel.Parse.parse s.model in
    let schemas = List.map Schema.Binding.of_string s.schemas in
    let schemas_for _tree = schemas in
    Ok
      (Llhsc.Pipeline.plan_tasks ~exclusive:s.exclusive ?budget:(budget s)
         ~certify:s.certify ?retry:(escalation s)
         ?unsound:(Option.map parse_unsound s.unsound)
         ~skip:s.skip ~model ~core ~deltas ~schemas_for ~vm_requests:s.vms ())
  with e -> (
    match Diag.of_exn e with
    | Some d -> Error (Fmt.str "%a" Diag.pp d)
    | None -> raise e)
