(** The fleet dispatcher: shard a task array across remote socket
    workers with the same supervision guarantees — and the same merged
    bytes — as the fork pool.

    Single-threaded nonblocking select loop.  Workers connect and
    handshake (hello -> setup -> ready); the ready message must echo the
    spec hash and task count, so a worker that planned a different run
    is rejected before it can contribute a result.  Task indices are
    then leased to ready workers (at most [max_inflight] per worker);
    the shared {!Llhsc.Supervise} core provides first-wins duplicate
    suppression (exactly-once merge), reassignment on worker loss, and
    poison quarantine after two crashes.

    Remote workers cannot be SIGKILLed, so every fault — death,
    partition, hang (lease past [deadline]), corrupt frame, invalid
    result — collapses to dropping the connection and crash-recording
    its leases.  Termination never depends on the fleet: when live
    connections fall below [min_workers] after the [wait_workers]
    registration grace (or once only quarantined tasks remain), a final
    in-process sweep completes every unresolved task locally, so a run
    that loses all its workers still finishes with the same report.
    [min_workers = 0] waits for workers indefinitely instead of
    degrading.

    With [secret] set, workers must complete a mutual HMAC-SHA256
    challenge–response before the spec is shipped; unauthenticated or
    replayed hellos are dropped with a [notice[AUTH]] and counted, and
    all post-handshake frames carry session-keyed MACs so a mid-stream
    injector is handled as a dead worker (see DESIGN.md "fleet trust").

    With [task_journal] set, every merged task result is appended to a
    CRC-checksummed, fsync'd journal; [resume] preloads a matching
    journal through the first-wins merge so a crashed dispatcher's
    successor re-runs only what is missing.

    A dispatcher that cannot bind its listen address degrades straight
    to the in-process sweep instead of failing the run.

    All supervision notices go to stderr; stdout is untouched (the
    pipeline report must stay byte-identical to [--jobs 1]). *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port *)
  min_workers : int;  (** degrade to in-process below this floor *)
  wait_workers : float;  (** registration grace before the floor applies *)
  deadline : float;  (** per-task lease, seconds *)
  max_inflight : int;  (** tasks leased to one worker at a time *)
  port_file : string option;  (** write the bound port here *)
  secret : string option;  (** require the HMAC handshake ([--secret-file]) *)
  compress : bool;  (** ship the spec LZ77-compressed ([--compress]) *)
  task_journal : string option;  (** journal per-task results here *)
  resume : bool;  (** replay a matching task journal before dispatching *)
}

(** [run cfg ~spec tasks] — serve [tasks] to the fleet and return one
    result per index ([None] only for a task that failed remotely and
    in the local sweep).  [spec] must describe the same run that planned
    [tasks], with [spec.skip] naming the journal-replayed products. *)
val run :
  config -> spec:Spec.t -> Llhsc.Shard.task array -> Llhsc.Shard.result option array

(** {1 Bandwidth-aware setup}

    Exposed for unit tests: the pure policy deciding whether a worker's
    setup ships the spec body or only its hash. *)

(** [`Cached] when [spec_hash] is among the hashes the worker's hello
    advertised as cached — the dispatcher sends {!msg_setup_cached} and
    skips the spec transfer; [`Ship] otherwise. *)
val setup_choice : cached:string list -> spec_hash:string -> [ `Cached | `Ship ]

(** The hash-only setup message sent on a cache hit:
    [{"setup":{"cached":true},"hash":h}] — no spec body.  A worker whose
    cache no longer holds [h] replies with an error and the dispatcher
    falls back to the full setup. *)
val msg_setup_cached : string -> string
