(* Seeded network-chaos TCP proxy (`llhsc chaosproxy`).

   Sits between fleet workers and the dispatcher and, driven by a
   deterministic seed, injects the failure modes real networks produce:
   partitions (connection kills), per-byte corruption, truncation,
   stalls, reordering, duplicated writes, and writes split at arbitrary
   byte boundaries.  The fleet protocol's claim is that every one of
   these collapses to dead-worker handling with reports byte-identical
   to a local run; the smoke and fault harnesses route workers through
   this proxy to hold the claim under adversarial schedules instead of
   only the in-process fault hooks.

   Single-process select loop, one chunk queue per direction per
   connection.  Faults apply per read chunk, so probabilities are "per
   socket read", not per byte — a corrupt rate of 0.02 poisons roughly
   one chunk in fifty regardless of chunk size.  All chaos decisions
   come from one xorshift64* stream seeded by --seed; the interleaving
   of socket events is OS-scheduled, so a seed pins the fault mix, not
   an exact byte schedule. *)

type config = {
  listen_host : string;
  listen_port : int;
  upstream_host : string;
  upstream_port : int;
  port_file : string option;
  seed : int;
  corrupt : float; (* per-chunk probability of one flipped byte *)
  drop : float; (* per-chunk probability of killing the connection *)
  trunc : float; (* per-chunk probability of truncating the chunk *)
  stall : float; (* per-chunk probability of delaying delivery *)
  stall_ms : int;
  reorder : float; (* per-chunk probability of jumping the queue *)
  dup : float; (* per-chunk probability of delivering twice *)
  split : float; (* per-chunk probability of two separate writes *)
}

let default =
  {
    listen_host = "127.0.0.1";
    listen_port = 0;
    upstream_host = "127.0.0.1";
    upstream_port = 0;
    port_file = None;
    seed = 1;
    corrupt = 0.0;
    drop = 0.0;
    trunc = 0.0;
    stall = 0.0;
    stall_ms = 100;
    reorder = 0.0;
    dup = 0.0;
    split = 0.0;
  }

let notice fmt = Format.eprintf ("llhsc chaosproxy: " ^^ fmt ^^ "@.")

(* xorshift64*: the same generator the fault harness uses, so seeds in
   CI logs mean the same thing everywhere. *)
let rng = ref 0x9E3779B97F4A7C15L

let seed_rng seed =
  rng := Int64.logxor 0x9E3779B97F4A7C15L (Int64.of_int seed);
  if !rng = 0L then rng := 0x9E3779B97F4A7C15L

let rand64 () =
  let x = ref !rng in
  x := Int64.logxor !x (Int64.shift_left !x 13);
  x := Int64.logxor !x (Int64.shift_right_logical !x 7);
  x := Int64.logxor !x (Int64.shift_left !x 17);
  rng := !x;
  Int64.mul !x 0x2545F4914F6CDD1DL

let uniform () =
  Int64.to_float (Int64.shift_right_logical (rand64 ()) 11) /. 9007199254740992.0

let chance p = p > 0.0 && uniform () < p

let rand_int n =
  if n <= 1 then 0 else Int64.to_int (Int64.rem (Int64.shift_right_logical (rand64 ()) 1) (Int64.of_int n))

type chunk = { data : Bytes.t; mutable off : int; due : float }

type pipe = {
  src : Unix.file_descr;
  dst : Unix.file_descr;
  mutable queue : chunk list; (* delivery order *)
  mutable src_eof : bool;
  mutable shut : bool; (* dst write side shut down after final flush *)
}

type pair = { id : int; c2u : pipe; u2c : pipe; mutable dead : bool }

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let kill_pair p reason =
  if not p.dead then begin
    p.dead <- true;
    close_quiet p.c2u.src;
    close_quiet p.c2u.dst;
    notice "conn %d: %s" p.id reason
  end

let scratch = Bytes.create 16384

(* Read one chunk off [pipe.src], push it (mangled) onto [pipe.queue].
   Returns false when the pair must die (partition or socket error). *)
let pump cfg now pair pipe =
  match Unix.read pipe.src scratch 0 (Bytes.length scratch) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> true
  | exception Unix.Unix_error _ ->
    kill_pair pair "socket error";
    false
  | 0 ->
    pipe.src_eof <- true;
    true
  | n ->
    if chance cfg.drop then begin
      kill_pair pair "partition injected";
      false
    end
    else begin
      let data = ref (Bytes.sub scratch 0 n) in
      if chance cfg.trunc then data := Bytes.sub !data 0 (rand_int (n + 1));
      if chance cfg.corrupt && Bytes.length !data > 0 then begin
        let pos = rand_int (Bytes.length !data) in
        let flip = 1 + rand_int 255 in
        Bytes.set !data pos
          (Char.chr (Char.code (Bytes.get !data pos) lxor flip))
      end;
      let due =
        if chance cfg.stall then now +. (float_of_int cfg.stall_ms /. 1000.0)
        else now
      in
      let pieces =
        let d = !data in
        if chance cfg.split && Bytes.length d >= 2 then begin
          let cut = 1 + rand_int (Bytes.length d - 1) in
          [
            { data = Bytes.sub d 0 cut; off = 0; due };
            { data = Bytes.sub d cut (Bytes.length d - cut); off = 0; due };
          ]
        end
        else [ { data = d; off = 0; due } ]
      in
      let pieces =
        if chance cfg.dup then
          pieces @ List.map (fun c -> { c with off = 0 }) pieces
        else pieces
      in
      (* Reorder: the fresh chunks jump ahead of the most recently
         queued one, so previously read bytes arrive after newer ones. *)
      pipe.queue <-
        (if chance cfg.reorder && pipe.queue <> [] then begin
           match List.rev pipe.queue with
           | last :: earlier -> List.rev earlier @ pieces @ [ last ]
           | [] -> pipe.queue @ pieces
         end
         else pipe.queue @ pieces);
      true
    end

(* Write as much of the due head chunk as the socket accepts. *)
let drain now pair pipe =
  match pipe.queue with
  | [] -> true
  | c :: rest ->
    if c.due > now then true
    else if Bytes.length c.data = c.off then begin
      pipe.queue <- rest;
      true
    end
    else begin
      match
        Unix.write pipe.dst c.data c.off (Bytes.length c.data - c.off)
      with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> true
      | exception Unix.Unix_error _ ->
        kill_pair pair "peer closed";
        false
      | w ->
        c.off <- c.off + w;
        if c.off = Bytes.length c.data then pipe.queue <- rest;
        true
    end

let connect_upstream cfg =
  let ip =
    try Unix.inet_addr_of_string cfg.upstream_host
    with Failure _ -> (
      try (Unix.gethostbyname cfg.upstream_host).Unix.h_addr_list.(0)
      with Not_found ->
        failwith (Printf.sprintf "cannot resolve upstream host %S" cfg.upstream_host))
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_INET (ip, cfg.upstream_port)) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
    close_quiet fd;
    None

let run cfg =
  seed_rng cfg.seed;
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  ignore prev_sigpipe;
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd
    (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.listen_host, cfg.listen_port));
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.listen_port
  in
  notice "listening on %s:%d -> %s:%d (seed %d)" cfg.listen_host bound_port
    cfg.upstream_host cfg.upstream_port cfg.seed;
  Option.iter
    (fun path ->
      let oc = open_out path in
      Printf.fprintf oc "%d\n" bound_port;
      close_out oc)
    cfg.port_file;
  let pairs = ref [] in
  let next_id = ref 0 in
  while true do
    let now = Unix.gettimeofday () in
    let live = List.filter (fun p -> not p.dead) !pairs in
    pairs := live;
    let reads =
      lfd
      :: List.concat_map
           (fun p ->
             List.filter_map
               (fun pipe -> if pipe.src_eof then None else Some pipe.src)
               [ p.c2u; p.u2c ])
           live
    in
    let pipe_pending pipe =
      match pipe.queue with
      | [] -> None
      | c :: _ -> if c.due <= now then Some pipe.dst else None
    in
    let writes =
      List.concat_map
        (fun p -> List.filter_map pipe_pending [ p.c2u; p.u2c ])
        live
    in
    (* Wake for the nearest stalled chunk; otherwise a coarse tick. *)
    let timeout =
      List.fold_left
        (fun acc p ->
          List.fold_left
            (fun acc pipe ->
              match pipe.queue with
              | { due; _ } :: _ when due > now -> Float.min acc (due -. now)
              | _ -> acc)
            acc [ p.c2u; p.u2c ])
        1.0 live
    in
    let readable, writable, _ =
      try Unix.select reads writes [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem lfd readable then begin
      match Unix.accept lfd with
      | exception Unix.Unix_error _ -> ()
      | cfd, _ -> (
        match connect_upstream cfg with
        | None ->
          notice "upstream refused; dropping client";
          close_quiet cfd
        | Some ufd ->
          Unix.set_nonblock cfd;
          Unix.set_nonblock ufd;
          incr next_id;
          let mk src dst =
            { src; dst; queue = []; src_eof = false; shut = false }
          in
          pairs :=
            { id = !next_id; c2u = mk cfd ufd; u2c = mk ufd cfd; dead = false }
            :: !pairs)
    end;
    List.iter
      (fun p ->
        if not p.dead then
          List.iter
            (fun pipe ->
              if (not pipe.src_eof) && List.mem pipe.src readable then
                ignore (pump cfg now p pipe))
            [ p.c2u; p.u2c ])
      !pairs;
    List.iter
      (fun p ->
        if not p.dead then
          List.iter
            (fun pipe ->
              if List.mem pipe.dst writable || pipe.queue <> [] then
                ignore (drain now p pipe))
            [ p.c2u; p.u2c ])
      !pairs;
    (* Propagate EOF once a direction has flushed everything it will
       ever deliver; reap the pair when both directions are finished. *)
    List.iter
      (fun p ->
        if not p.dead then begin
          List.iter
            (fun pipe ->
              if pipe.src_eof && pipe.queue = [] && not pipe.shut then begin
                pipe.shut <- true;
                try Unix.shutdown pipe.dst Unix.SHUTDOWN_SEND
                with Unix.Unix_error _ -> ()
              end)
            [ p.c2u; p.u2c ];
          if p.c2u.shut && p.u2c.shut then kill_pair p "closed"
        end)
      !pairs
  done
