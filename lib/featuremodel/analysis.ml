(* Automated analysis of feature models via the SAT solver (Section II-B):
   translation to propositional logic, void detection, product validity,
   product enumeration/counting, and dead/core feature detection.

   Products are identified by their *concrete* feature sets (abstract
   features do not distinguish products, after Thüm et al.). *)

type t = {
  solver : Sat.Solver.t;
  vars : (string * int) list; (* feature name -> solver variable *)
  model : Model.t;
}

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

let var t name =
  match List.assoc_opt name t.vars with
  | Some v -> v
  | None -> error "unknown feature %s" name

let lit t name = Sat.Lit.of_var (var t name)

(* Propositional semantics of the model given an atom lookup. *)
let formula (model : Model.t) lookup =
  let open Sat.Formula in
  let rec feature_constraints (f : Model.feature) =
    let fv = atom (lookup f.Model.name) in
    let child_constraints =
      List.concat_map
        (fun (c : Model.feature) ->
          let cv = atom (lookup c.Model.name) in
          (* A selected child implies its parent. *)
          let up = implies cv fv in
          (* A mandatory child is forced by its parent. *)
          let down = if c.Model.mandatory then [ implies fv cv ] else [] in
          (up :: down) @ feature_constraints c)
        f.Model.children
    in
    let group_constraint =
      match (f.Model.group, f.Model.children) with
      | _, [] -> []
      | Model.And_group, _ -> []
      | Model.Or_group, children ->
        [ implies fv (disj (List.map (fun c -> atom (lookup c.Model.name)) children)) ]
      | Model.Xor_group, children ->
        let atoms = List.map (fun c -> atom (lookup c.Model.name)) children in
        [ implies fv (disj atoms); at_most_one atoms ]
    in
    child_constraints @ group_constraint
  in
  conj
    (atom (lookup model.root.Model.name)
    :: feature_constraints model.root
    @ List.map (Bexpr.to_formula lookup) model.constraints)

let encode (model : Model.t) =
  let solver = Sat.Solver.create () in
  let vars =
    List.map (fun name -> (name, Sat.Solver.new_var solver)) (Model.feature_names model)
  in
  let lookup name =
    match List.assoc_opt name vars with
    | Some v -> v
    | None -> error "unknown feature %s" name
  in
  ignore (Sat.Formula.assert_in solver (formula model lookup) : bool);
  { solver; vars; model }

let is_void t = Sat.Solver.solve t.solver = Sat.Solver.Unsat

(* A product is a set of concrete features; valid iff some total
   configuration of the model projects onto exactly that set. *)
let is_valid_product t selected =
  List.iter (fun n -> if not (Model.mem t.model n) then error "unknown feature %s" n) selected;
  let assumptions =
    List.map
      (fun name ->
        let l = lit t name in
        if List.mem name selected then l else Sat.Lit.neg l)
      (Model.concrete_names t.model)
  in
  Sat.Solver.solve ~assumptions t.solver = Sat.Solver.Sat

(* Enumerate all products (concrete feature sets).  Temporary blocking
   clauses are guarded by an activation literal so enumeration does not
   poison the solver for later queries. *)
let enumerate_products ?(limit = max_int) t =
  let concrete = Model.concrete_names t.model in
  let guard = Sat.Lit.of_var (Sat.Solver.new_var t.solver) in
  let products = ref [] in
  let continue = ref true in
  while !continue && List.length !products < limit do
    match Sat.Solver.solve ~assumptions:[ guard ] t.solver with
    (* [Unknown] cannot happen (no budget is passed), but stopping the
       enumeration is the conservative reading if it ever does. *)
    | Sat.Solver.Unsat | Sat.Solver.Unknown -> continue := false
    | Sat.Solver.Sat ->
      let product = List.filter (fun n -> Sat.Solver.value t.solver (var t n)) concrete in
      products := product :: !products;
      (* Block this concrete assignment (under the guard). *)
      let blocking =
        Sat.Lit.neg guard
        :: List.map
             (fun n ->
               let l = lit t n in
               if List.mem n product then Sat.Lit.neg l else l)
             concrete
      in
      if not (Sat.Solver.add_clause t.solver blocking) then continue := false
  done;
  (* Retire the guard so the blocking clauses can never fire again. *)
  ignore (Sat.Solver.add_clause t.solver [ Sat.Lit.neg guard ] : bool);
  List.rev_map (List.sort String.compare) !products

let count_products ?limit t = List.length (enumerate_products ?limit t)

(* Features that can never be selected in any valid configuration. *)
let dead_features t =
  List.filter
    (fun name -> Sat.Solver.solve ~assumptions:[ lit t name ] t.solver = Sat.Solver.Unsat)
    (Model.feature_names t.model)

(* Features present in every valid configuration. *)
let core_features t =
  List.filter
    (fun name ->
      Sat.Solver.solve ~assumptions:[ Sat.Lit.neg (lit t name) ] t.solver = Sat.Solver.Unsat)
    (Model.feature_names t.model)

(* Is a partial selection consistent (extensible to a full product)? *)
let is_consistent_selection t ~selected ~deselected =
  let assumptions =
    List.map (lit t) selected
    @ List.map (fun n -> Sat.Lit.neg (lit t n)) deselected
  in
  Sat.Solver.solve ~assumptions t.solver = Sat.Solver.Sat

(* Optional features that nevertheless occur in every product ("false
   optional": the modeller marked them optional, but constraints force
   them whenever their parent is selected). *)
let false_optional_features t =
  let rec optionals parent_name (f : Model.feature) =
    let own =
      if f.Model.mandatory || parent_name = None then []
      else [ (Option.get parent_name, f.Model.name) ]
    in
    own @ List.concat_map (optionals (Some f.Model.name)) f.Model.children
  in
  optionals None t.model.Model.root
  |> List.filter_map (fun (parent, name) ->
         (* False optional iff parent selected forces the feature:
            FM & parent & ~feature is unsat. *)
         let assumptions = [ lit t parent; Sat.Lit.neg (lit t name) ] in
         if Sat.Solver.solve ~assumptions t.solver = Sat.Solver.Unsat then Some name
         else None)

(* Cross-tree constraints already implied by the rest of the model
   (redundant).  Checked semantically: FM-without-c & ~c unsat. *)
let redundant_constraints t =
  let lookup name = var t name in
  List.filteri
    (fun i _ -> 
      let others =
        List.filteri (fun j _ -> j <> i) t.model.Model.constraints
      in
      let reduced = { t.model with Model.constraints = others } in
      let solver = Sat.Solver.create () in
      (* Fresh solver with identical variable numbering. *)
      List.iter (fun _ -> ignore (Sat.Solver.new_var solver : int)) t.vars;
      ignore (Sat.Formula.assert_in solver (formula reduced lookup) : bool);
      let c = List.nth t.model.Model.constraints i in
      ignore
        (Sat.Formula.assert_in solver (Sat.Formula.neg (Bexpr.to_formula lookup c)) : bool);
      Sat.Solver.solve solver = Sat.Solver.Unsat)
    t.model.Model.constraints
