(* Multi-product feature models for static partitioning (Section IV-A).

   A hypervisor configuration with m VMs instantiates the same base feature
   model once per VM; designated resource groups (e.g. the children of
   "cpus") are *exclusive*: within one VM at most one member may be selected
   (per the base model's XOR), and across VMs the same member may not be
   selected twice.  This is the paper's Boolean formula

     (f_1^1 \/ ... \/ f_n^m <-> f) /\
     /\_{i<j,k} ~(f_i^k /\ f_j^k) /\ /\_{k<l} ~(f_i^k /\ f_i^l)

   The platform configuration is the union of the per-VM products. *)

type t = {
  solver : Sat.Solver.t;
  base : Model.t;
  num_vms : int;
  exclusive : string list;
  vars : ((int * string) * int) list; (* (vm index 1..m, feature) -> variable *)
}

exception Error of string

let error fmt = Fmt.kstr (fun msg -> raise (Error msg)) fmt

let var t ~vm name =
  match List.assoc_opt (vm, name) t.vars with
  | Some v -> v
  | None -> error "unknown feature %s (vm %d)" name vm

let lit t ~vm name = Sat.Lit.of_var (var t ~vm name)

let encode ?(exclusive = []) (base : Model.t) ~vms =
  if vms < 1 then error "need at least one VM";
  List.iter
    (fun name ->
      match Model.find_feature base.Model.root name with
      | None -> error "exclusive feature %s not in the model" name
      | Some f ->
        if f.Model.children = [] then
          error "exclusive feature %s has no sub-features to partition" name)
    exclusive;
  let solver = Sat.Solver.create () in
  let names = Model.feature_names base in
  let vars =
    List.concat_map
      (fun vm -> List.map (fun name -> ((vm, name), Sat.Solver.new_var solver)) names)
      (List.init vms (fun i -> i + 1))
  in
  let lookup vm name =
    match List.assoc_opt (vm, name) vars with
    | Some v -> v
    | None -> error "unknown feature %s" name
  in
  (* Each VM is a valid product of the base model. *)
  for vm = 1 to vms do
    ignore (Sat.Formula.assert_in solver (Analysis.formula base (lookup vm)) : bool)
  done;
  (* Exclusivity across VMs for each designated resource group. *)
  List.iter
    (fun parent ->
      let children =
        match Model.find_feature base.Model.root parent with
        | Some f -> List.map (fun c -> c.Model.name) f.Model.children
        | None -> []
      in
      List.iter
        (fun child ->
          for k = 1 to vms do
            for l = k + 1 to vms do
              ignore
                (Sat.Solver.add_clause solver
                   [ Sat.Lit.neg (Sat.Lit.of_var (lookup k child));
                     Sat.Lit.neg (Sat.Lit.of_var (lookup l child))
                   ]
                  : bool)
            done
          done)
        children)
    exclusive;
  { solver; base; num_vms = vms; exclusive; vars }

(* Satisfiability under per-VM feature decisions.  [selected]/[deselected]
   pin (vm, feature) pairs; the answer is the full per-VM products. *)
let solve ?(selected = []) ?(deselected = []) t =
  let assumptions =
    List.map (fun (vm, name) -> lit t ~vm name) selected
    @ List.map (fun (vm, name) -> Sat.Lit.neg (lit t ~vm name)) deselected
  in
  match Sat.Solver.solve ~assumptions t.solver with
  | Sat.Solver.Unsat -> `Unsat
  | Sat.Solver.Unknown ->
    (* unreachable: allocation runs without a budget *)
    raise (Error "allocation solver returned unknown (budget exhausted)")
  | Sat.Solver.Sat ->
    let concrete = Model.concrete_names t.base in
    `Sat
      (List.init t.num_vms (fun i ->
           let vm = i + 1 in
           ( vm,
             List.filter (fun name -> Sat.Solver.value t.solver (var t ~vm name)) concrete )))

let is_allocatable t = solve t <> `Unsat

(* The platform product: union of the per-VM products. *)
let platform_features products =
  List.sort_uniq String.compare (List.concat_map snd products)

(* Largest number of VMs for which the multi-product model with exclusivity
   remains satisfiable (the paper notes m = 2 for the 2-CPU example). *)
let max_vms ?(bound = 16) ?(exclusive = []) base =
  let rec go best vms =
    if vms > bound then best
    else
      let t = encode ~exclusive base ~vms in
      if is_allocatable t then go vms (vms + 1) else best
  in
  go 0 1
