(** Minimal JSON reader/writer for the pipeline journal (and other
    machine-readable artifacts).  Covers exactly the JSON subset the
    journal emits: null, booleans, 63-bit integers, strings, arrays and
    objects — no floats, no duplicate-key policing.  Self-contained so the
    journal adds no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with full string escaping — one call
    per journal record guarantees records never contain a raw newline. *)
val to_string : t -> string

(** Parse a complete JSON value; [Error] carries a message with an offset.
    Trailing garbage after the value is an error (journal records are one
    value per line), and nesting deeper than 512 levels is rejected rather
    than risking a stack overflow — this parser also fronts the serve
    daemon, where bodies are hostile. *)
val parse : string -> (t, string) result

(** {1 Accessors} ([None] on shape mismatch) *)

val member : string -> t -> t option
val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option

(** All-or-nothing string list. *)
val to_str_list : t -> string list option
