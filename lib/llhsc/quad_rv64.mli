(** A second, larger case study: a quad-core RV64 SBC (two CPU clusters,
    four memory banks, two UARTs, virtio devices, GPIO, virtual network
    channels) partitioned into three VMs.  Exercises cluster extraction,
    PLIC interrupt topology, per-bank RAM partitioning and three-way
    exclusive allocation. *)

val core_dts : string
val core_tree : unit -> Devicetree.Tree.t
val feature_model_src : string
val feature_model : unit -> Featuremodel.Model.t
val deltas_src : string
val deltas : unit -> Delta.Lang.t list

(** Raw YAML sources of the binding schemas (one string per schema), for
    tooling that needs to materialise the fixture on disk. *)
val schemas_src : string list

val schemas_for : Devicetree.Tree.t -> Schema.Binding.t list

(** Three fully partitioned VM feature selections. *)
val vm1_features : string list

val vm2_features : string list
val vm3_features : string list

(** Exclusive resource groups: memory banks, CPUs, UARTs, virtio. *)
val exclusive : string list

(** The full Fig.-2 pipeline on this case study; [~certify:true] certifies
    every solver verdict of the run.  [?budget]/[?retry] bound and escalate
    solver work, [?journal]/[?resume]/[?inputs_hash] thread crash-safe
    journaling through, [?jobs] dispatches the check phase across a
    supervised pool of forked workers, and
    [?task_deadline]/[?max_respawns]/[?mem_limit]/[?cpu_limit] tune its
    supervision (see {!Pipeline.run}). *)
val run_pipeline :
  ?budget:Sat.Solver.budget ->
  ?certify:bool ->
  ?retry:Smt.Escalation.t ->
  ?inputs_hash:string ->
  ?journal:Journal.sink ->
  ?resume:Journal.entry list ->
  ?jobs:int ->
  ?task_deadline:float ->
  ?max_respawns:int ->
  ?mem_limit:int ->
  ?cpu_limit:int ->
  unit ->
  Pipeline.outcome
