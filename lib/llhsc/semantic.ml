(* The semantic checker (§IV-C): properties that no purely syntactic tool —
   dtc or dt-schema — can express, discharged on the bit-vector solver.

   Main check: memory consistency, formula (7) of the paper.  For every pair
   of memory-mapped regions (decoded from [reg] under the tree's
   #address-cells/#size-cells context and translated to the root address
   space through [ranges]), the regions must not intersect.  The check is
   phrased existentially, exactly as in the paper: a shared address
   x \in [b_i, b_i+s_i) \cap [b_j, b_j+s_j) is sought; a SAT answer is the
   collision witness (the "counter example of consistency" Z3 would
   produce), an UNSAT answer proves consistency.

   Additional checks: interrupt-line uniqueness per interrupt parent, and a
   truncation lint for the 64->32-bit address-cells pitfall of §IV-C. *)

module T = Devicetree.Tree
module Addr = Devicetree.Addresses
module Term = Smt.Term
module Solver = Smt.Solver

type region_at = {
  owner : string; (* node path *)
  region : Addr.region;
  loc : Devicetree.Loc.t;
}

(* A node is enabled unless it carries status with a value other than
   "okay"/"ok" — the standard DT convention; disabled devices (e.g. muxed
   peripherals) claim no resources. *)
let is_enabled tree path =
  match T.find tree path with
  | None -> true
  | Some node ->
    (match Option.bind (T.get_prop node "status") T.prop_string with
     | Some ("okay" | "ok") | None -> true
     | Some _ -> false)

(* Memory-mapped regions participating in the overlap check: only regions
   actually translated into the root address space (e.g. /cpus children,
   whose reg cells are CPU ids, are excluded by their missing ranges), and
   only from enabled nodes. *)
let collect_regions tree =
  List.concat_map
    (fun (nr : Addr.node_regions) ->
      if (not nr.Addr.translated) || not (is_enabled tree nr.Addr.path) then []
      else
        List.filter_map
          (fun (r : Addr.region) ->
            if Int64.equal r.Addr.size 0L then None
            else Some { owner = nr.Addr.path; region = r; loc = nr.Addr.reg_loc })
          nr.Addr.regions)
    (Addr.regions_in_root_space tree)

(* x \in [base, base+size).  Bases and sizes are constants, so the region
   end is computed here with explicit wrap handling: an end of exactly 2^64
   (wrap to 0 with a non-zero size) means "up to the top of the address
   space" and drops the upper bound; any other wrap is an invalid region
   caught by [Addr.region_end] at decode time. *)
let contains ~x (r : Addr.region) =
  let base = Term.bv ~width:64 r.Addr.base in
  let end_ = Int64.add r.Addr.base r.Addr.size in
  let lower = Term.uge x base in
  if Int64.equal end_ 0L && not (Int64.equal r.Addr.size 0L) then lower
  else Term.and_ [ lower; Term.ult x (Term.bv ~width:64 end_) ]

(* Check one pair of regions for intersection; returns the witness address
   when they do intersect.  This is one disjunct of formula (7). *)
let pair_overlap solver a b =
  Solver.push solver;
  let x = Term.bv_var "collision-witness" ~width:64 in
  Solver.assert_ solver (contains ~x a.region);
  Solver.assert_ solver (contains ~x b.region);
  (* Pin the witness to the larger base: it lies in the intersection
     whenever one exists, so satisfiability is unchanged and the reported
     address is canonical (0x0 in the paper's truncation example). *)
  let pin =
    if Int64.unsigned_compare a.region.Addr.base b.region.Addr.base >= 0 then
      a.region.Addr.base
    else b.region.Addr.base
  in
  Solver.assert_ solver (Term.eq x (Term.bv ~width:64 pin));
  let result =
    match Solver.check solver with
    | Solver.Sat -> `Overlap (Solver.get_bv solver x)
    | Solver.Unsat _ -> `Disjoint
    | Solver.Unknown -> `Inconclusive
  in
  Solver.pop solver;
  result

(* Memory consistency (formula (7)): every ordered pair of distinct regions
   must be disjoint.

   Two strategies share the SMT confirmation step:
   - [`Pairwise]: all n(n-1)/2 pairs go to the solver — the paper-faithful
     formulation of (7);
   - [`Sweep] (default): regions sorted by base address; only pairs whose
     intervals can intersect under the sort order are confirmed by the
     solver.  For k collisions this does O(n log n + k) solver calls
     instead of O(n^2).  Both run incrementally on one solver instance and
     agree on their verdicts (asserted by the test suite and benched as an
     ablation). *)
let candidate_pairs regions =
    let arr = Array.of_list regions in
    Array.sort
      (fun a b -> Int64.unsigned_compare a.region.Addr.base b.region.Addr.base)
      arr;
    let n = Array.length arr in
    let out = ref [] in
    for i = 0 to n - 1 do
      let a = arr.(i) in
      let a_end = Int64.add a.region.Addr.base a.region.Addr.size in
      let a_wraps =
        Int64.unsigned_compare a_end a.region.Addr.base < 0 || Int64.equal a_end 0L
      in
      let j = ref (i + 1) in
      let continue = ref true in
      while !continue && !j < n do
        let b = arr.(!j) in
        (* Sorted by base: once b.base >= a_end, no later region can
           intersect a (unless a wraps to the top of the address space). *)
        if (not a_wraps) && Int64.unsigned_compare b.region.Addr.base a_end >= 0 then
          continue := false
        else begin
          out := (a, b) :: !out;
          incr j
        end
      done
    done;
    List.rev !out

let all_pairs regions =
  let rec pairs = function
    | [] -> []
    | r :: rest -> List.map (fun r' -> (r, r')) rest @ pairs rest
  in
  pairs regions

let check_memory ?solver ?(strategy = `Sweep) tree =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  let regions = collect_regions tree in
  let pairs =
    match strategy with `Sweep -> candidate_pairs regions | `Pairwise -> all_pairs regions
  in
  List.filter_map
    (fun (a, b) ->
      (* Canonical pair order, so both strategies report identically. *)
      let a, b =
        if
          Int64.unsigned_compare a.region.Addr.base b.region.Addr.base < 0
          || (Int64.equal a.region.Addr.base b.region.Addr.base
             && String.compare a.owner b.owner <= 0)
        then (a, b)
        else (b, a)
      in
      match pair_overlap solver a b with
      | `Disjoint -> None
      | `Overlap witness ->
        Some
          (Report.finding ~checker:"semantic" ~node_path:a.owner ~loc:a.loc
             "memory regions collide: %s %a overlaps %s %a at address 0x%Lx" a.owner
             Addr.pp_region a.region b.owner Addr.pp_region b.region witness)
      | `Inconclusive ->
        Some
          (Report.finding ~severity:Report.Warning ~checker:"semantic"
             ~node_path:a.owner ~loc:a.loc
             "inconclusive: solver budget exhausted while checking %s %a against %s %a"
             a.owner Addr.pp_region a.region b.owner Addr.pp_region b.region))
    pairs

(* --- interrupts ----------------------------------------------------------------- *)

(* Interrupt-line uniqueness: two devices whose specifiers resolve to the
   same interrupt parent may not claim the same specifier.  Resolution
   (interrupt-parent inheritance, #interrupt-cells, interrupts-extended) is
   [Devicetree.Interrupts]; uniqueness is discharged as a Distinct
   constraint, so the solver (not ad-hoc code) rejects double-booked
   lines. *)
let check_interrupts ?solver tree =
  let solver = match solver with Some s -> s | None -> Solver.create () in
  match Devicetree.Interrupts.specs (T.resolve_phandles tree) with
  | exception Devicetree.Interrupts.Error (msg, loc) ->
    [ Report.finding ~checker:"semantic" ~node_path:"/" ~loc "interrupt topology: %s" msg ]
  | all_specs ->
    (* Disabled devices claim no interrupt lines. *)
    let specs =
      List.filter
        (fun s -> is_enabled tree s.Devicetree.Interrupts.device)
        all_specs
    in
    let controllers =
      List.sort_uniq String.compare
        (List.map (fun s -> s.Devicetree.Interrupts.controller) specs)
    in
    List.concat_map
      (fun controller ->
        let claims =
          List.filter (fun s -> String.equal s.Devicetree.Interrupts.controller controller) specs
        in
        if List.length claims < 2 then []
        else begin
          Solver.push solver;
          (* Each device's specifier is fixed by an obligation; Distinct is
             the rule.  Devices may raise several interrupts; key each. *)
          let keyed =
            List.mapi
              (fun i s ->
                (Printf.sprintf "%s#%d" s.Devicetree.Interrupts.device i, s))
              claims
          in
          List.iter
            (fun (key, s) ->
              Solver.assert_named solver ("irq@" ^ key)
                (Term.eq
                   (Term.bv_var ("irq|" ^ key) ~width:64)
                   (Term.bv ~width:64 (Devicetree.Interrupts.spec_key s))))
            keyed;
          Solver.assert_named solver "irq-distinct"
            (Term.distinct
               (List.map (fun (key, _) -> Term.bv_var ("irq|" ^ key) ~width:64) keyed));
          let findings =
            match Solver.check solver with
            | Solver.Sat -> []
            | Solver.Unknown ->
              let s = snd (List.hd keyed) in
              [ Report.finding ~severity:Report.Warning ~checker:"semantic"
                  ~node_path:s.Devicetree.Interrupts.device
                  ~loc:s.Devicetree.Interrupts.loc
                  "inconclusive: solver budget exhausted while checking interrupt \
                   uniqueness on controller %s"
                  controller
              ]
            | Solver.Unsat core ->
              let offenders =
                List.filter_map
                  (fun name ->
                    if String.length name > 4 && String.sub name 0 4 = "irq@" then
                      Some (String.sub name 4 (String.length name - 4))
                    else None)
                  core
              in
              let colliding = List.filter (fun (key, _) -> List.mem key offenders) keyed in
              (match colliding with
               | (_, s) :: _ ->
                 let device_names =
                   List.sort_uniq String.compare
                     (List.map (fun (_, s) -> s.Devicetree.Interrupts.device) colliding)
                 in
                 [ Report.finding ~checker:"semantic" ~node_path:s.Devicetree.Interrupts.device
                     ~loc:s.Devicetree.Interrupts.loc ~core
                     "interrupt %a of controller %s claimed by multiple devices: %s"
                     Fmt.(list ~sep:sp (fmt "%Ld"))
                     s.Devicetree.Interrupts.cells controller
                     (String.concat ", " device_names)
                 ]
               | [] -> [])
          in
          Solver.pop solver;
          findings
        end)
      controllers

(* --- truncation lint (§IV-C) ------------------------------------------------------- *)

(* When a 64-bit reg (written under #address-cells = #size-cells = 2) is
   reinterpreted under 32-bit cells, the high half of every value becomes a
   separate (base, size) entry; typical symptoms are zero-sized banks or a
   doubled bank count with zero high cells.  dt-schema cannot see this (any
   multiple of the cell sum validates); we flag it as a warning. *)
let check_truncation tree =
  List.concat_map
    (fun (nr : Addr.node_regions) ->
      if not nr.Addr.translated then [] (* cpu ids and bus-private regs are not addresses *)
      else
      let zero_sized = List.filter (fun r -> Int64.equal r.Addr.size 0L) nr.Addr.regions in
      let duplicated_bases =
        let bases = List.map (fun r -> r.Addr.base) nr.Addr.regions in
        List.sort_uniq Int64.compare
          (List.filter
             (fun b -> List.length (List.filter (Int64.equal b) bases) > 1)
             bases)
      in
      let warn fmt =
        Report.finding ~severity:Report.Warning ~checker:"semantic" ~node_path:nr.Addr.path
          ~loc:nr.Addr.reg_loc fmt
      in
      (if zero_sized = [] then []
       else
         [ warn
             "%d zero-sized memory region(s); reg may have been written for a wider #address-cells/#size-cells context (64->32-bit truncation)"
             (List.length zero_sized)
         ])
      @
      if duplicated_bases = [] then []
      else
        [ warn
            "multiple regions share base address 0x%Lx; the high halves of 64-bit values read as separate entries under 32-bit cells (64->32-bit truncation)"
            (List.hd duplicated_bases)
        ])
    (Addr.regions_in_root_space tree)

(* --- unit-address lints -------------------------------------------------------- *)

(* dtc-style lints relating a node's unit address to its reg: siblings with
   the same unit address, and a unit address disagreeing with the first reg
   base (both warnings; both syntactically fine, both routinely wrong). *)
let check_unit_addresses tree =
  let rec walk node path acc =
    let acc =
      (* Duplicate unit addresses among siblings. *)
      let addrs =
        List.filter_map
          (fun (c : T.t) ->
            Option.map (fun a -> (a, c.T.name)) (Devicetree.Ast.unit_address c.T.name))
          node.T.children
      in
      List.fold_left
        (fun acc (addr, name) ->
          let dups = List.filter (fun (a, n) -> a = addr && n <> name) addrs in
          if dups = [] then acc
          else
            let other = snd (List.hd dups) in
            if String.compare name other < 0 then
              Report.finding ~severity:Report.Warning ~checker:"semantic"
                ~node_path:(T.join_path path name) ~loc:node.T.loc
                "unit address @%s duplicated by sibling %s" addr other
              :: acc
            else acc)
        acc addrs
    in
    let ac = Addr.address_cells node and sc = Addr.size_cells node in
    let acc =
      List.fold_left
        (fun acc (c : T.t) ->
          match (Devicetree.Ast.unit_address c.T.name, T.get_prop c "reg") with
          | Some addr, Some reg -> begin
            match
              (Int64.of_string_opt ("0x" ^ addr),
               Addr.decode_reg ~address_cells:ac ~size_cells:sc reg)
            with
            | Some unit_addr, { Addr.base; _ } :: _ when not (Int64.equal unit_addr base) ->
              Report.finding ~severity:Report.Warning ~checker:"semantic"
                ~node_path:(T.join_path path c.T.name) ~loc:reg.T.p_loc
                "unit address @%s does not match the first reg base 0x%Lx" addr base
              :: acc
            | _ -> acc
            | exception Addr.Error _ -> acc
          end
          | _ -> acc)
        acc node.T.children
    in
    List.fold_left
      (fun acc c -> walk c (T.join_path path c.T.name) acc)
      acc node.T.children
  in
  List.rev (walk tree "/" [])

(* All semantic checks on one incremental solver instance.  When we own the
   solver, [certify] certifies every verdict and appends an error finding
   per uncertified query (see Report.cert_findings). *)
let check ?solver ?(certify = false) tree =
  let owned = solver = None in
  let solver =
    match solver with Some s -> s | None -> Solver.create ~certify ()
  in
  let findings =
    check_memory ~solver tree @ check_interrupts ~solver tree
    @ check_truncation tree @ check_unit_addresses tree
  in
  if owned && certify then
    findings @ Report.cert_findings (Solver.cert_report solver)
  else findings
