(* The syntactic checker (§IV-B): dt-schema-style constraints discharged on
   the SMT solver, reported as findings with their unsat cores.

   [check] runs the constraint-based checker; [check_direct] runs the
   procedural dt-schema baseline.  The two agree on pass/fail per node (a
   property exercised by the test suite); the SMT route additionally yields
   cores that name the conflicting rules, and extends to the cross-cutting
   checks dt-schema cannot express. *)

module T = Devicetree.Tree

(* Human-readable message for a failing node given its unsat core. *)
let summarize_core core =
  let interesting =
    List.filter
      (fun rule ->
        (* Obligations ("value", "count", "covered", ...) state facts about
           the binding; the schema rules are the actionable part. *)
        not
          (List.exists
             (fun k -> Util.contains rule (":" ^ k ^ ":"))
             [ "value"; "count"; "cell-count"; "covered"; "closure"; "node"; "node-presence"; "value-cell"; "value-cell0" ]))
      core
  in
  match interesting with [] -> core | _ -> interesting

type obligation = string * T.t * Schema.Binding.t

let obligations ~schemas tree =
  List.concat_map
    (fun (path, node, applicable) ->
      List.map (fun schema -> (path, node, schema)) applicable)
    (Schema.Binding.applicable schemas tree)

let check_obligations ?solver ?(certify = false) ?(product = "") obls =
  (* When we own the solver, [certify] turns on verdict certification and
     surfaces any uncertified query as an error finding; a caller-supplied
     solver keeps ownership of its certification report (the pipeline
     collects it once per run). *)
  let owned = solver = None in
  let solver =
    match solver with Some s -> s | None -> Smt.Solver.create ~certify ()
  in
  (* Scope all symbols by the product name so several products can share one
     incremental solver instance. *)
  let prefix path = if product = "" then path else product ^ ":" ^ path in
  let findings =
    List.concat_map
      (fun (path, node, schema) ->
        match Schema.Compile.check_node solver ~schema ~path:(prefix path) node with
        | `Valid -> []
        | `Invalid core ->
          [ Report.finding ~checker:"syntactic" ~node_path:path ~loc:node.T.loc ~core
              "node violates schema %s: %s" schema.Schema.Binding.id
              (String.concat "; " (summarize_core core))
          ]
        | `Inconclusive ->
          [ Report.finding ~severity:Report.Warning ~checker:"syntactic"
              ~node_path:path ~loc:node.T.loc
              "inconclusive: solver budget exhausted while checking schema %s"
              schema.Schema.Binding.id
          ])
      obls
  in
  if owned && certify then
    findings @ Report.cert_findings (Smt.Solver.cert_report solver)
  else findings

let check ?solver ?certify ~schemas ?product tree =
  check_obligations ?solver ?certify ?product (obligations ~schemas tree)

(* The dt-schema baseline: same judgements, no solver, no cores. *)
let check_direct ~schemas tree =
  List.map
    (fun (v : Schema.Validate.violation) ->
      Report.finding ~checker:"syntactic" ~node_path:v.Schema.Validate.node_path
        ~loc:v.Schema.Validate.loc "%s [%s]" v.Schema.Validate.message v.Schema.Validate.rule)
    (Schema.Validate.check schemas tree)
