(** Small string helpers shared by the llhsc modules. *)

(** Substring search. *)
val contains : string -> string -> bool

val starts_with : prefix:string -> string -> bool

(** Run a syscall thunk, retrying as long as it fails with
    [Unix.EINTR].  Wrap every blocking [Unix.read]/[select]/[waitpid]/
    [fsync] call site: a stray signal must not abort a drain. *)
val retry_eintr : (unit -> 'a) -> 'a
