(** Small string helpers shared by the llhsc modules. *)

(** Substring search. *)
val contains : string -> string -> bool

val starts_with : prefix:string -> string -> bool

(** Run a syscall thunk, retrying as long as it fails with
    [Unix.EINTR].  Wrap every blocking [Unix.read]/[select]/[waitpid]/
    [fsync] call site: a stray signal must not abort a drain. *)
val retry_eintr : (unit -> 'a) -> 'a

(** Ignore SIGPIPE and return a closure restoring the previous
    disposition.  Call at the start of any code path that writes to
    pipes or sockets whose peer may vanish (shard supervisor, serve
    daemon, fleet dispatcher/worker): a disconnect mid-write must
    surface as [EPIPE] on that one descriptor, not kill the process. *)
val ignore_sigpipe : unit -> unit -> unit

(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of a whole string —
    [crc32 "123456789" = 0xCBF43926].  Guards journal lines and fleet
    frames against corrupt-but-parseable bytes. *)
val crc32 : string -> int

(** Streaming variant: fold a substring into a running checksum
    (starting from [0] for an empty prefix). *)
val crc32_update : int -> string -> int -> int -> int
