(* Minimal JSON for the pipeline journal: writer + recursive-descent
   parser over the subset the journal emits (null/bool/int/string/
   array/object).  The writer never emits raw control characters, so a
   record is always exactly one line of the JSONL file. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- writer ----------------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parser ----------------------------------------------------------------- *)

exception Parse_error of string

let parse src =
  let pos = ref 0 in
  let len = String.length src in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at offset %d" m !pos))) fmt
  in
  let peek () = if !pos < len then Some src.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && (match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, got %C" c c'
    | None -> fail "expected %C, got end of input" c
  in
  let literal word v =
    if !pos + String.length word <= len && String.sub src !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal"
  in
  (* UTF-8 encode a code point.  Surrogate halves never reach here: the
     string parser recombines pairs and rejects lone halves, so [cp] is a
     scalar value in [0, 0x10FFFF]. *)
  let add_code_point buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           let hex4 () =
             if !pos + 4 > len then fail "truncated \\u escape";
             let hex = String.sub src !pos 4 in
             match int_of_string_opt ("0x" ^ hex) with
             | Some cp ->
               pos := !pos + 4;
               cp
             | None -> fail "bad \\u escape %S" hex
           in
           let cp = hex4 () in
           if cp >= 0xD800 && cp <= 0xDBFF then begin
             (* High surrogate: only valid as the first half of a pair;
                recombine rather than emit an invalid raw 3-byte
                encoding. *)
             if !pos + 2 <= len && src.[!pos] = '\\' && src.[!pos + 1] = 'u'
             then begin
               pos := !pos + 2;
               let lo = hex4 () in
               if lo >= 0xDC00 && lo <= 0xDFFF then
                 add_code_point buf
                   (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
               else fail "lone high surrogate \\u%04X" cp
             end
             else fail "lone high surrogate \\u%04X" cp
           end
           else if cp >= 0xDC00 && cp <= 0xDFFF then
             fail "lone low surrogate \\u%04X" cp
           else add_code_point buf cp
         | Some c -> fail "bad escape \\%C" c
         | None -> fail "unterminated escape");
        go ()
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < len && (match src.[!pos] with '0' .. '9' -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub src start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> i
    | None -> fail "bad number %S" text
  in
  (* Depth guard: a hostile body like megabytes of '[' would otherwise
     recurse once per byte and blow the stack.  512 is far beyond any
     legitimate journal record or serve request, and small enough that the
     parser fails with a diagnosable error long before the runtime
     would. *)
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep (limit 512)";
    let parse_value () = parse_value (depth + 1) in
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (f :: acc)
          | Some '}' ->
            advance ();
            List.rev (f :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some c -> fail "unexpected character %C" c
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* --- accessors -------------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None

let to_str_list v =
  match to_list v with
  | None -> None
  | Some items ->
    let strs = List.filter_map to_str items in
    if List.length strs = List.length items then Some strs else None
