(** Crash-safe pipeline journal: an append-only JSONL file with one
    fsync'd record per completed pipeline product, enabling [--resume] to
    skip work that already concluded before a crash.

    File layout: the first line is a header record carrying a format
    version and a hash of the run's inputs; every following line is one
    {!entry}, written as ["<json>\t<crc32 of json, 8 hex digits>"] —
    the per-line checksum catches corrupt-but-still-parseable lines
    that a JSON parse failure cannot.  Each record is written, flushed
    and [fsync]'d before the pipeline moves on, so a SIGKILL at any
    point loses at most the record being written.  {!load} tolerates a
    truncated final line, skips lines whose checksum does not verify,
    accepts checksum-less lines written by older versions, and takes the
    last record per (kind, name) when a product appears twice (a resumed
    run appends, it never rewrites). *)

type kind = Product | Partition

type entry = {
  kind : kind;
  name : string; (** product name; ["partition"] for the partition record *)
  hash : string;
      (** content hash of everything this record's verdict depends on (see
          {!product_hash} / {!partition_hash}); a mismatch on resume means
          the entry is stale and the product is re-checked *)
  features : string list;
  order : string list; (** delta application order (products only) *)
  findings : Report.finding list;
  certified : bool; (** the run that wrote this record was certifying *)
  cert_failures : int;
      (** certification failures accumulated when the record was written;
          resumed certifying runs re-check any entry with failures (or
          written by a non-certifying run) rather than trusting it *)
}

(** {1 Content hashes}

    MD5 (via stdlib [Digest]) over a canonical rendering of the inputs —
    collision resistance against adversaries is not a goal; detecting
    changed inputs across runs is. *)

(** Hash of the raw run inputs plus verdict-affecting options; computed by
    the caller from file bytes and flags, threaded through the header and
    every per-product hash. *)
val inputs_hash : parts:string list -> string

(** [product_hash ~inputs_hash ~name ~features] — what a product verdict
    depends on: the run inputs and the product's completed feature set. *)
val product_hash : inputs_hash:string -> name:string -> features:string list -> string

(** The partition verdict depends on every completed product. *)
val partition_hash :
  inputs_hash:string -> products:(string * string list) list -> string

(** {1 Finding serialisation}

    The journal's JSON encoding of one finding, shared with the worker-pool
    wire protocol (see {!Shard}). *)

val finding_to_json : Report.finding -> Json.t

(** [None] on a structurally invalid encoding. *)
val finding_of_json : Json.t -> Report.finding option

(** {1 Writing} *)

type sink

(** Open (append mode, creating if needed) and write the header record if
    the file is new or empty.  Raises [Sys_error] on unwritable paths. *)
val open_ : path:string -> inputs_hash:string -> sink

(** Append one record: a single JSON line, flushed and fsync'd before
    returning.  Honours the fault-injection kill hooks
    [LLHSC_FAULT_KILL_AFTER_RECORDS]/[LLHSC_FAULT_KILL_MID_RECORD] (test
    harness only: simulate SIGKILL at seeded points) and
    [LLHSC_FAULT_TERM_AFTER_RECORDS] (raise SIGTERM in-process after the
    n-th record, exercising the CLI's graceful-interrupt path). *)
val record : sink -> entry -> unit

val close : sink -> unit

(** {1 Loading} *)

(** Parse a journal for resumption.  Returns [[]] when the file is
    missing, unreadable, or its header's inputs hash differs from
    [inputs_hash] (the whole journal is stale).  Unparsable lines — e.g. a
    half-written final record — are skipped.  Later records win over
    earlier ones with the same (kind, name). *)
val load : path:string -> inputs_hash:string -> entry list

(** Lookup in a loaded journal. *)
val find : entry list -> kind -> string -> entry option

(** {1 Line checksums}

    The per-line CRC32 framing, exported so other journals (the fleet
    dispatcher's task journal) share the exact format. *)

(** [checksummed line] is ["<line>\t<crc32 of line, 8 hex digits>"]. *)
val checksummed : string -> string

(** Inverse of {!checksummed}: [Some line] when the checksum verifies,
    [Some line] unchanged for checksum-less lines written by older
    versions, [None] when the checksum is present but wrong. *)
val verify_line : string -> string option
