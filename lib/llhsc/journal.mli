(** Crash-safe pipeline journal: an append-only JSONL file with one
    fsync'd record per completed pipeline product, enabling [--resume] to
    skip work that already concluded before a crash.

    File layout: the first line is a header record carrying a format
    version and a hash of the run's inputs; every following line is one
    {!entry}, written as ["<json>\t<crc32 of json, 8 hex digits>"] —
    the per-line checksum catches corrupt-but-still-parseable lines
    that a JSON parse failure cannot.  Each record is written, flushed
    and [fsync]'d before the pipeline moves on, so a SIGKILL at any
    point loses at most the record being written.  {!load} tolerates a
    truncated final line, skips lines whose checksum does not verify,
    accepts checksum-less lines written by older versions, and takes the
    last record per (kind, name) when a product appears twice (a resumed
    run appends, it never rewrites). *)

type kind = Product | Partition

type entry = {
  kind : kind;
  name : string; (** product name; ["partition"] for the partition record *)
  hash : string;
      (** content hash of everything this record's verdict depends on (see
          {!product_hash} / {!partition_hash}); a mismatch on resume means
          the entry is stale and the product is re-checked *)
  features : string list;
  order : string list; (** delta application order (products only) *)
  findings : Report.finding list;
  certified : bool; (** the run that wrote this record was certifying *)
  cert_failures : int;
      (** certification failures accumulated when the record was written;
          resumed certifying runs re-check any entry with failures (or
          written by a non-certifying run) rather than trusting it *)
}

(** {1 Content hashes}

    MD5 (via stdlib [Digest]) over a canonical rendering of the inputs —
    collision resistance against adversaries is not a goal; detecting
    changed inputs across runs is. *)

(** Hash of the raw run inputs plus verdict-affecting options; computed by
    the caller from file bytes and flags, threaded through the header and
    every per-product hash. *)
val inputs_hash : parts:string list -> string

(** [product_hash ~inputs_hash ~name ~features] — what a product verdict
    depends on: the run inputs and the product's completed feature set. *)
val product_hash : inputs_hash:string -> name:string -> features:string list -> string

(** The partition verdict depends on every completed product. *)
val partition_hash :
  inputs_hash:string -> products:(string * string list) list -> string

(** {1 Finding serialisation}

    The journal's JSON encoding of one finding, shared with the worker-pool
    wire protocol (see {!Shard}). *)

val finding_to_json : Report.finding -> Json.t

(** [None] on a structurally invalid encoding. *)
val finding_of_json : Json.t -> Report.finding option

(** {1 Writing} *)

type sink

(** Open (append mode, creating if needed) and write the header record if
    the file is new or empty.  Raises [Sys_error] on unwritable paths
    (including {!Durable}'s injected [erofs@n] fault).  A header
    write/fsync failure does not raise: the sink opens already degraded
    (see {!degradation}). *)
val open_ : path:string -> inputs_hash:string -> sink

(** Append one record: a single JSON line, flushed and fsync'd before
    returning.  Honours the fault-injection kill hooks
    [LLHSC_FAULT_KILL_AFTER_RECORDS]/[LLHSC_FAULT_KILL_MID_RECORD] (test
    harness only: simulate SIGKILL at seeded points) and
    [LLHSC_FAULT_TERM_AFTER_RECORDS] (raise SIGTERM in-process after the
    n-th record, exercising the CLI's graceful-interrupt path).

    Fail-operational on disk errors: if the write or its fsync fails
    (ENOSPC, EIO, ...), the sink degrades instead of raising — a
    best-effort marker record is appended so {!load} refuses the file,
    every later [record] is a no-op, and {!degradation} reports the
    reason so the caller can surface a [warning[JOURNAL]].  A record is
    never reported durable when its fsync failed. *)
val record : sink -> entry -> unit

(** [Some reason] once a journal write or fsync has failed; the run
    carries on unjournaled and must report the degradation loudly. *)
val degradation : sink -> string option

val close : sink -> unit

(** {1 Loading} *)

(** Parse a journal for resumption.  Returns [[]] when the file is
    missing, unreadable, its header's inputs hash differs from
    [inputs_hash] (the whole journal is stale), or the writing run
    recorded a durability degradation — the journal stopped being
    complete at an unknowable point, and {!compact} is the explicit
    operator path that re-blesses the surviving entries.  Unparsable
    lines — e.g. a half-written final record — are skipped.  Later
    records win over earlier ones with the same (kind, name). *)
val load : path:string -> inputs_hash:string -> entry list

(** Lookup in a loaded journal. *)
val find : entry list -> kind -> string -> entry option

(** {1 Line checksums}

    The per-line CRC32 framing, exported so other journals (the fleet
    dispatcher's task journal) share the exact format. *)

(** [checksummed line] is ["<line>\t<crc32 of line, 8 hex digits>"]. *)
val checksummed : string -> string

(** Inverse of {!checksummed}: [Some line] when the checksum verifies,
    [Some line] unchanged for checksum-less lines written by older
    versions, [None] when the checksum is present but wrong. *)
val verify_line : string -> string option

(** {1 fsck / compact}

    Offline integrity checking and recovery, exposed by the
    [llhsc journal] subcommand and run (quietly) before every
    [--resume]. *)

type fsck_report = {
  header : [ `Ok of string | `Bad | `Missing ];
      (** [`Ok hash] carries the inputs hash the journal claims; [`Bad]
          is an unparsable or wrong-version header; [`Missing] an empty
          file *)
  records : int; (** CRC-valid, well-formed entry records *)
  entries : int; (** distinct (kind, name) after last-wins merge *)
  legacy : int; (** records accepted in the older checksum-less format *)
  torn : int; (** lines whose checksum is present but does not verify *)
  invalid : int;
      (** lines whose checksum verifies (or is absent) but whose body is
          not a valid entry — torn final records land here too *)
  degraded_reason : string option;
      (** the degradation marker's reason, when the writing run recorded
          one *)
}

(** [true] when the journal has something to report: torn or invalid
    lines, or a degradation marker.  Drives the fsck exit-code contract
    (0 clean / 1 issues / 2 unusable). *)
val fsck_issues : fsck_report -> bool

(** Census a journal without loading it for resumption.  [None] when the
    file is missing or unreadable. *)
val fsck : path:string -> fsck_report option

(** Atomic last-wins rewrite: parse tolerantly (exactly like {!load},
    but also accepting a degraded journal), then atomically replace the
    file with a fresh header plus one checksummed line per surviving
    entry — dropping torn lines, superseded duplicates and any
    degradation marker.  [Ok (lines_before, entries_after)] on success;
    [Error reason] when the file is unreadable or its header is
    missing/unrecognised (the inputs hash to re-bless is unknowable).
    May raise [Sys_error]/[Unix.Unix_error] if the atomic rewrite itself
    fails. *)
val compact : path:string -> (int * int, string) result
