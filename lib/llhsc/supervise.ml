(* Transport-agnostic supervision core shared by the fork-pipe worker
   pool (Shard) and the socket fleet dispatcher (Fleet.Dispatch).

   The state machine owns everything about task progress that does NOT
   depend on how workers are reached: the pending queue, the first-wins
   results array (duplicate suppression), per-task crash counts with
   poison quarantine, and per-worker lease clocks.  The transports keep
   only what is theirs — pids and pipes on one side, sockets and frame
   decoders on the other — and drive this machine through a handful of
   transitions:

     dispatch    -> Lease.start        (clock begins at hand-off)
     heartbeat   -> Lease.beat         (worker accepted; clock restarts)
     result      -> resolve            (`Fresh merges, `Duplicate drops)
     worker dies -> record_crash per leased unresolved task
                     (`Reassign requeues front; `Quarantine poisons)
     deadline    -> Lease.expired      (transport kills/drops the worker)

   Keeping one implementation is not just deduplication: the
   byte-identity argument (any fault schedule merges to the --jobs 1
   report) rests on first-wins resolution and deterministic task
   content, and both transports must share it exactly. *)

module Lease = struct
  (* In-flight (task, clock-start) pairs of ONE worker.  The fork pool
     holds at most one; the fleet dispatcher up to its per-worker
     in-flight bound. *)
  type t = { mutable items : (int * float) list }

  let create () = { items = [] }

  let start l task now =
    l.items <- (task, now) :: List.remove_assoc task l.items

  let beat l task now =
    if List.mem_assoc task l.items then start l task now

  let finish l task = l.items <- List.remove_assoc task l.items
  let tasks l = List.map fst l.items
  let count l = List.length l.items

  let expired l ~deadline ~now =
    List.filter_map
      (fun (task, t0) -> if now -. t0 > deadline then Some task else None)
      l.items

  let next_expiry l ~deadline ~now =
    List.fold_left
      (fun acc (_, t0) ->
        let dt = t0 +. deadline -. now in
        match acc with None -> Some dt | Some a -> Some (Float.min a dt))
      None l.items
end

type 'r t = {
  n : int;
  results : 'r option array;
  mutable pending : int list;
  crash_count : int array;
  poisoned : bool array;
  mutable quarantined : int;
  mutable done_count : int;
}

let create n =
  {
    n;
    results = Array.make n None;
    pending = List.init n Fun.id;
    crash_count = Array.make n 0;
    poisoned = Array.make n false;
    quarantined = 0;
    done_count = 0;
  }

let task_count t = t.n
let results t = t.results
let has_pending t = t.pending <> []
let pending_count t = List.length t.pending

let next t =
  match t.pending with
  | [] -> None
  | i :: rest ->
    t.pending <- rest;
    Some i

(* Requeue at the FRONT: a reassigned task should be retried before new
   work so its (bounded) crash budget is consumed promptly. *)
let requeue t i = t.pending <- i :: List.filter (fun j -> j <> i) t.pending

let resolve t i r =
  if Option.is_some t.results.(i) then `Duplicate
  else begin
    t.results.(i) <- Some r;
    t.done_count <- t.done_count + 1;
    (* The task may still sit on the pending queue (reassigned after a
       lease expiry while a slow first worker finished anyway): a
       resolved task must never be dispatched again. *)
    t.pending <- List.filter (fun j -> j <> i) t.pending;
    `Fresh
  end

let crashes t i = t.crash_count.(i)
let is_quarantined t i = t.poisoned.(i)

let record_crash t i =
  if Option.is_some t.results.(i) then `Resolved
  else begin
    t.crash_count.(i) <- t.crash_count.(i) + 1;
    if t.crash_count.(i) >= 2 then begin
      if not t.poisoned.(i) then begin
        t.poisoned.(i) <- true;
        t.quarantined <- t.quarantined + 1;
        (* A poisoned task leaves the queue: only the in-process sweep
           after the pool retires may touch it again. *)
        t.pending <- List.filter (fun j -> j <> i) t.pending
      end;
      `Quarantine t.crash_count.(i)
    end
    else begin
      requeue t i;
      `Reassign
    end
  end

let unfinished t = t.done_count + t.quarantined < t.n

let unresolved t =
  List.filter (fun i -> Option.is_none t.results.(i)) (List.init t.n Fun.id)
