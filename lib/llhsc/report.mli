(** Unified findings produced by the llhsc checkers, with enough context to
    trace each back to the DTS node (and, through the pipeline, to the delta
    module) that caused it. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  checker : string; (** "alloc" | "syntactic" | "semantic" | "delta" *)
  node_path : string;
  message : string;
  loc : Devicetree.Loc.t;
  core : string list; (** unsat-core rule names for SMT-based checkers *)
}

(** Build a finding with a formatted message (default severity [Error]). *)
val finding :
  ?severity:severity ->
  ?core:string list ->
  ?loc:Devicetree.Loc.t ->
  checker:string ->
  node_path:string ->
  ('a, Format.formatter, unit, finding) format4 ->
  'a

val pp_severity : Format.formatter -> severity -> unit
val pp : Format.formatter -> finding -> unit

(** Only the [Error]-severity findings. *)
val errors : finding list -> finding list

(** No errors (warnings allowed)? *)
val is_clean : finding list -> bool

(** Certification failures of a solver as error findings (checker
    ["certify"]): a verdict the independent checker rejected must never
    leave the run looking clean. *)
val cert_findings : Smt.Solver.cert_report -> finding list

(** Per-query certificate stats (verdict, trace length, check time) plus a
    one-line summary. *)
val pp_cert : Format.formatter -> Smt.Solver.cert_report -> unit

(** Escalation-ladder statistics: one summary line plus, per retried
    query, its full attempt log (scale, seed, polarity, result,
    conflicts, time). *)
val pp_retry : Format.formatter -> Smt.Solver.retry_report -> unit
