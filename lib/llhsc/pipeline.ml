(* The end-to-end llhsc workflow (Fig. 2):

      feature model + per-VM requests
        └─ alloc checker (§IV-A) ─ completed products, platform product
      core DTS + delta modules
        └─ delta application per product (§III-B)
      generated DTSs
        └─ syntactic checker (§IV-B) + semantic checker (§IV-C)
      artifacts: checked VM DTSs + platform DTS (+ hypervisor configs,
      rendered by lib/bao from these trees)

   All SMT-based checks share one incremental solver instance per run
   (push/pop scoped), as the paper advocates (§VI).  Each phase runs under
   an isolation guard: an error while building or checking one product is
   converted to a diagnostic (and the solver's scope stack rebalanced) so
   the remaining products are still checked. *)

module T = Devicetree.Tree

type product = {
  name : string;            (* "vm1", "vm2", ..., "platform" *)
  features : string list;   (* the product's concrete features *)
  tree : T.t;
  findings : Report.finding list;
}

type outcome = {
  products : product list;
  alloc_findings : Report.finding list;
  partition_findings : Report.finding list; (* cross-VM checks *)
  delta_orders : (string * string list) list; (* product -> application order *)
  errors : Diag.t list; (* per-phase failures that did not abort the run *)
  cert : Smt.Solver.cert_report option; (* Some iff the run certified *)
  retry : Smt.Solver.retry_report option; (* Some iff a retry policy ran *)
  replayed : string list; (* products whose verdicts came from the journal *)
}

let ok outcome =
  outcome.errors = []
  && Report.is_clean outcome.alloc_findings
  && Report.is_clean outcome.partition_findings
  && List.for_all (fun p -> Report.is_clean p.findings) outcome.products
  && (match outcome.cert with
     | Some r -> r.Smt.Solver.failures = []
     | None -> true)

(* Run [f] with per-phase isolation: a known error becomes a diagnostic
   prefixed with [what], the solver scope stack is rebalanced (a failing
   phase may die between push and pop), and [fallback] stands in for the
   result.  Unknown exceptions still propagate. *)
let guarded ~solver ~errors ~what ~fallback f =
  let depth = Smt.Solver.num_scopes solver in
  try f ()
  with e -> (
    match Diag.of_exn e with
    | None -> raise e
    | Some d ->
      while Smt.Solver.num_scopes solver > depth do
        Smt.Solver.pop solver
      done;
      errors := { d with Diag.message = what ^ ": " ^ d.Diag.message } :: !errors;
      fallback)

(* Generate and check a single product. *)
let build_product ~solver ~core ~deltas ~schemas_for ~name ~features =
  match Delta.Apply.generate ~core ~deltas ~selected:features with
  | exception Delta.Apply.Error e ->
    let finding =
      Report.finding ~checker:"delta" ~node_path:(Option.value ~default:"?" e.Delta.Apply.delta)
        ~loc:e.Delta.Apply.loc "product %s: %s" name e.Delta.Apply.message
    in
    { name; features; tree = core; findings = [ finding ] }
  | tree ->
    let schemas = schemas_for tree in
    let syntactic = Syntactic.check ~solver ~schemas ~product:name tree in
    let semantic = Semantic.check ~solver tree in
    { name; features; tree; findings = syntactic @ semantic }

(* Run the full workflow.

   [vm_requests]: per-VM feature selections (possibly partial; the alloc
   checker completes them).  The platform product is the union of the
   completed VM products, matching §III-A: "the platform DTS is the union of
   selected features in both products".

   [budget] installs a solver resource budget for every check in the run;
   exhausted queries degrade to "inconclusive" warnings instead of
   hanging.  [retry] installs an escalation ladder: inconclusive queries
   are re-run with scaled budgets and diversified restarts.

   Crash safety: with [journal] each completed product (and the partition
   check) is appended to the journal as one fsync'd record keyed by a
   content hash of its inputs.  [resume] is a previously loaded journal;
   products whose hash matches a trusted journal entry are replayed —
   trees regenerated (cheap and deterministic) but findings taken from the
   journal, no solver work — and everything else is re-checked.  A
   certifying run only trusts entries that were themselves written by a
   certifying run with zero failures: resumption never fabricates a
   certificate. *)
let run ?(exclusive = []) ?budget ?(certify = false) ?retry ?unsound
    ?(inputs_hash = "") ?journal ?(resume = []) ~model ~core ~deltas
    ~schemas_for ~vm_requests () =
  let solver = Smt.Solver.create ~certify () in
  Smt.Solver.set_budget solver budget;
  Smt.Solver.set_escalation solver retry;
  Option.iter (Smt.Solver.inject_unsoundness solver) unsound;
  let errors = ref [] in
  let replayed = ref [] in
  let cert_failures () =
    if certify then
      List.length (Smt.Solver.cert_report solver).Smt.Solver.failures
    else 0
  in
  let journal_entry ~kind ~name ~hash ~features ~order ~findings
      ~failures_before =
    match journal with
    | None -> ()
    | Some sink ->
      Journal.record sink
        { Journal.kind; name; hash; features; order; findings;
          certified = certify;
          cert_failures = cert_failures () - failures_before }
  in
  (* A journal entry is only worth replaying if the current run's
     certification demands are no stricter than the run that wrote it. *)
  let trusted (e : Journal.entry) =
    (not certify) || (e.Journal.certified && e.Journal.cert_failures = 0)
  in
  let finish ~products ~alloc_findings ~partition_findings ~delta_orders =
    { products; alloc_findings; partition_findings; delta_orders;
      errors = List.rev !errors;
      cert = (if certify then Some (Smt.Solver.cert_report solver) else None);
      retry =
        (match retry with
         | None -> None
         | Some _ -> Some (Smt.Solver.retry_report solver));
      replayed = List.rev !replayed }
  in
  let vms = List.length vm_requests in
  let requests =
    List.mapi (fun i selected -> Alloc.request (i + 1) selected) vm_requests
  in
  match
    guarded ~solver ~errors ~what:"allocation" ~fallback:(Alloc.Rejected []) (fun () ->
        Alloc.allocate ~exclusive model ~vms ~requests)
  with
  | Alloc.Rejected findings ->
    finish ~products:[] ~alloc_findings:findings ~partition_findings:[] ~delta_orders:[]
  | Alloc.Allocated { vms = completed; platform } ->
    let build ~name ~features =
      let hash = Journal.product_hash ~inputs_hash ~name ~features in
      match Journal.find resume Journal.Product name with
      | Some e when e.Journal.hash = hash && trusted e ->
        (* Replay: regenerate the tree (needed downstream by the partition
           check and artifact rendering) but skip all solver work and take
           the recorded findings verbatim. *)
        replayed := name :: !replayed;
        let tree =
          guarded ~solver ~errors ~what:("product " ^ name) ~fallback:core
            (fun () ->
              match Delta.Apply.generate ~core ~deltas ~selected:features with
              | tree -> tree
              | exception Delta.Apply.Error _ -> core)
        in
        { name; features; tree; findings = e.Journal.findings }
      | _ ->
        let errs_before = List.length !errors in
        let failures_before = cert_failures () in
        let p =
          guarded ~solver ~errors ~what:("product " ^ name)
            ~fallback:{ name; features; tree = core; findings = [] }
            (fun () ->
              build_product ~solver ~core ~deltas ~schemas_for ~name ~features)
        in
        (* Only journal products whose phase completed without an isolated
           error: a guarded failure means the recorded findings would not
           reflect a full check. *)
        if List.length !errors = errs_before then
          journal_entry ~kind:Journal.Product ~name ~hash ~features
            ~order:(Delta.Apply.order ~selected:features deltas)
            ~findings:p.findings ~failures_before;
        p
    in
    let vm_products =
      List.map
        (fun (vm, features) ->
          let name = Printf.sprintf "vm%d" vm in
          build ~name ~features)
        completed
    in
    let platform_product = build ~name:"platform" ~features:platform in
    let all_products = vm_products @ [ platform_product ] in
    let delta_orders =
      List.map
        (fun p -> (p.name, Delta.Apply.order ~selected:p.features deltas))
        all_products
    in
    let partition_findings =
      let hash =
        Journal.partition_hash ~inputs_hash
          ~products:(List.map (fun p -> (p.name, p.features)) all_products)
      in
      match Journal.find resume Journal.Partition "partition" with
      | Some e when e.Journal.hash = hash && trusted e ->
        replayed := "partition" :: !replayed;
        e.Journal.findings
      | _ ->
        let errs_before = List.length !errors in
        let failures_before = cert_failures () in
        let fs =
          guarded ~solver ~errors ~what:"partition check" ~fallback:[] (fun () ->
              Partition.check ~solver ~platform:platform_product.tree
                (List.map (fun p -> (p.name, p.tree)) vm_products))
        in
        if List.length !errors = errs_before then
          journal_entry ~kind:Journal.Partition ~name:"partition" ~hash
            ~features:[] ~order:[] ~findings:fs ~failures_before;
        fs
    in
    finish ~products:all_products ~alloc_findings:[] ~partition_findings
      ~delta_orders

let pp_outcome ppf outcome =
  List.iter
    (fun p ->
      Fmt.pf ppf "product %s: features {%s}@." p.name (String.concat ", " p.features);
      (match List.assoc_opt p.name outcome.delta_orders with
       | Some order when order <> [] ->
         Fmt.pf ppf "  delta order: %s@." (String.concat " < " order)
       | _ -> ());
      match p.findings with
      | [] -> Fmt.pf ppf "  all checks passed@."
      | fs -> List.iter (fun f -> Fmt.pf ppf "  %a@." Report.pp f) fs)
    outcome.products;
  List.iter (fun f -> Fmt.pf ppf "%a@." Report.pp f) outcome.alloc_findings;
  (match outcome.partition_findings with
   | [] -> ()
   | fs ->
     Fmt.pf ppf "cross-VM partitioning:@.";
     List.iter (fun f -> Fmt.pf ppf "  %a@." Report.pp f) fs);
  List.iter (fun d -> Fmt.pf ppf "%a@." Diag.pp d) outcome.errors;
  (* Resume/replay status deliberately does NOT appear here: a resumed
     run's report must be byte-identical to an uninterrupted one.  The CLI
     reports replays on stderr. *)
  (match outcome.retry with
   | Some r when r.Smt.Solver.retried <> [] ->
     Fmt.pf ppf "%a@." Report.pp_retry r
   | _ -> ());
  match outcome.cert with
  | None -> ()
  | Some r ->
    Fmt.pf ppf "%a@." Report.pp_cert r;
    (* An uncertified verdict is never a silent pass: each failure is a
       structured CERT diagnostic. *)
    List.iter
      (fun msg -> Fmt.pf ppf "%a@." Diag.pp (Diag.make ~code:"CERT" "%s" msg))
      r.Smt.Solver.failures
