(* The end-to-end llhsc workflow (Fig. 2):

      feature model + per-VM requests
        └─ alloc checker (§IV-A) ─ completed products, platform product
      core DTS + delta modules
        └─ delta application per product (§III-B)
      generated DTSs
        └─ syntactic checker (§IV-B) + semantic checker (§IV-C)
      artifacts: checked VM DTSs + platform DTS (+ hypervisor configs,
      rendered by lib/bao from these trees)

   The check phase is sliced into independent tasks — fixed-size chunks of
   a product's syntactic obligations plus one semantic task per product —
   and every task runs on a fresh solver instance.  [?jobs] dispatches the
   task list across a supervised pool of forked workers (see {!Shard}:
   leases, deadlines, reassignment, respawn, rlimit guards); because the
   slicing, the per-task solvers and the canonical merge order are all
   independent of the job count AND of the crash/reassignment schedule, a
   [--jobs N] report is byte-identical to a sequential one even when
   workers are killed or hang mid-run.  The parent keeps everything
   stateful: allocation, delta
   application, the journal, and the cross-VM partition check (which needs
   every product's tree and runs after the merge barrier).

   Each phase runs under an isolation guard: an error while building or
   checking one product is converted to a diagnostic so the remaining
   products are still checked. *)

module T = Devicetree.Tree

type product = {
  name : string;            (* "vm1", "vm2", ..., "platform" *)
  features : string list;   (* the product's concrete features *)
  tree : T.t;
  findings : Report.finding list;
}

type outcome = {
  products : product list;
  alloc_findings : Report.finding list;
  partition_findings : Report.finding list; (* cross-VM checks *)
  delta_orders : (string * string list) list; (* product -> application order *)
  errors : Diag.t list; (* per-phase failures that did not abort the run *)
  cert : Smt.Solver.cert_report option; (* Some iff the run certified *)
  retry : Smt.Solver.retry_report option; (* Some iff a retry policy ran *)
  replayed : string list; (* products whose verdicts came from the journal *)
  journal_fault : string option; (* journal degraded mid-run: reason *)
}

let ok outcome =
  outcome.errors = []
  && Report.is_clean outcome.alloc_findings
  && Report.is_clean outcome.partition_findings
  && List.for_all (fun p -> Report.is_clean p.findings) outcome.products
  && (match outcome.cert with
     | Some r -> r.Smt.Solver.failures = []
     | None -> true)

(* Run [f] with per-phase isolation: a known error becomes a diagnostic
   prefixed with [what], the solver's scope stack (when one is involved)
   is rebalanced — a failing phase may die between push and pop — and
   [fallback] stands in for the result.  Unknown exceptions still
   propagate. *)
let guarded ?solver ~errors ~what ~fallback f =
  let depth =
    match solver with Some s -> Smt.Solver.num_scopes s | None -> 0
  in
  try f ()
  with e -> (
    match Diag.of_exn e with
    | None -> raise e
    | Some d ->
      (match solver with
       | Some s ->
         while Smt.Solver.num_scopes s > depth do
           Smt.Solver.pop s
         done
       | None -> ());
      errors := { d with Diag.message = what ^ ": " ^ d.Diag.message } :: !errors;
      fallback)

(* Syntactic obligations per task.  Fixed — independent of the job count —
   so the task list (and with it every solver-local query numbering) is
   the same whether the run is sequential or sharded.  Small enough that
   the dominant product's obligations spread across all workers; large
   enough that per-task solver setup stays in the noise. *)
let syn_chunk_size = 8

let chunks size l =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 l

(* What the parent decided about one product before the task phase. *)
type plan =
  | Done of { p : product; journal_hash : string option }
      (* no solver work: replayed, degraded, or failed in delta
         application ([journal_hash] set iff the record should still be
         journaled) *)
  | Sharded of {
      name : string;
      features : string list;
      hash : string;
      tree : T.t;
      first : int; (* index of the product's first task *)
      count : int; (* its number of tasks (syntactic chunks + semantic) *)
    }

let fresh_solver ~certify ~budget ~retry ~unsound () =
  let s = Smt.Solver.create ~certify () in
  Smt.Solver.set_budget s budget;
  Smt.Solver.set_escalation s retry;
  Option.iter (Smt.Solver.inject_unsoundness s) unsound;
  s

type planned =
  | Plan_rejected of Report.finding list (* allocation said no *)
  | Planned of { plans : plan list; tasks : Shard.task array }

(* The planning phase, shared between [run] (local, journal-aware) and
   [plan_tasks] (a remote fleet worker rebuilding the dispatcher's task
   array from shipped inputs).  Everything here is a deterministic
   function of the run inputs plus [skip]/[resume]: allocation, delta
   application, obligation slicing and the per-task solver construction
   never look at the clock, the host, or the job count — which is what
   lets a worker on another machine produce tasks (and so results)
   identical to the dispatcher's own.

   Journal replay is the only plan decision that depends on private
   parent state (the resume entries); [skip] is its transport: the
   dispatcher ships the names of the products it replayed and the worker
   plans them as [Done] without needing the journal itself. *)
let plan_all ~exclusive ~budget ~certify ~retry ~unsound ~inputs_hash ~resume
    ~skip ~errors ~replayed ~model ~core ~deltas ~schemas_for ~vm_requests =
  (* A journal entry is only worth replaying if the current run's
     certification demands are no stricter than the run that wrote it. *)
  let trusted (e : Journal.entry) =
    (not certify) || (e.Journal.certified && e.Journal.cert_failures = 0)
  in
  let replay_findings name hash =
    if List.mem name skip then Some []
    else
      match Journal.find resume Journal.Product name with
      | Some e when e.Journal.hash = hash && trusted e ->
        Some e.Journal.findings
      | _ -> None
  in
  let vms = List.length vm_requests in
  let requests =
    List.mapi (fun i selected -> Alloc.request (i + 1) selected) vm_requests
  in
  match
    guarded ~errors ~what:"allocation" ~fallback:(Alloc.Rejected []) (fun () ->
        Alloc.allocate ~exclusive model ~vms ~requests)
  with
  | Alloc.Rejected findings -> Plan_rejected findings
  | Alloc.Allocated { vms = completed; platform } ->
    let specs =
      List.map
        (fun (vm, features) -> (Printf.sprintf "vm%d" vm, features))
        completed
      @ [ ("platform", platform) ]
    in
    let tasks = ref [] (* reversed *) in
    let n_tasks = ref 0 in
    let add_task f =
      tasks := f :: !tasks;
      incr n_tasks
    in
    (* Wrap a checking thunk as one task: fresh solver, local isolation,
       result assembled from that solver's own reports. *)
    let checking_task ~name f =
      add_task
        { Shard.owner = name;
          run =
            (fun () ->
          let solver = fresh_solver ~certify ~budget ~retry ~unsound () in
          let task_errors = ref [] in
          let findings =
            guarded ~solver ~errors:task_errors ~what:("product " ^ name)
              ~fallback:[]
              (fun () -> f solver)
          in
          let rr = Smt.Solver.retry_report solver in
          let cr = Smt.Solver.cert_report solver in
          { Shard.product = name;
            findings;
            errors = List.rev !task_errors;
            queries = rr.Smt.Solver.total_queries;
            certs = (if certify then cr.Smt.Solver.certs else []);
            cert_failures = (if certify then cr.Smt.Solver.failures else []);
            retried = rr.Smt.Solver.retried }) }
    in
    let degraded ~name ~features =
      Done { p = { name; features; tree = core; findings = [] };
             journal_hash = None }
    in
    let plan_product (name, features) =
      let hash = Journal.product_hash ~inputs_hash ~name ~features in
      match replay_findings name hash with
      | Some findings ->
        (* Replay: regenerate the tree (needed downstream by the partition
           check and artifact rendering) but skip all solver work and take
           the recorded findings verbatim. *)
        replayed := name :: !replayed;
        let tree =
          guarded ~errors ~what:("product " ^ name) ~fallback:core
            (fun () ->
              match Delta.Apply.generate ~core ~deltas ~selected:features with
              | tree -> tree
              | exception Delta.Apply.Error _ -> core)
        in
        Done { p = { name; features; tree; findings }; journal_hash = None }
      | None -> (
        match Delta.Apply.generate ~core ~deltas ~selected:features with
        | exception Delta.Apply.Error e ->
          let finding =
            Report.finding ~checker:"delta"
              ~node_path:(Option.value ~default:"?" e.Delta.Apply.delta)
              ~loc:e.Delta.Apply.loc "product %s: %s" name e.Delta.Apply.message
          in
          (* The delta failure IS the product's complete verdict: journal
             it like any checked product. *)
          Done { p = { name; features; tree = core; findings = [ finding ] };
                 journal_hash = Some hash }
        | exception e -> (
          match Diag.of_exn e with
          | None -> raise e
          | Some d ->
            errors :=
              { d with Diag.message = "product " ^ name ^ ": " ^ d.Diag.message }
              :: !errors;
            degraded ~name ~features)
        | tree -> (
          match
            guarded ~errors ~what:("product " ^ name) ~fallback:None (fun () ->
                Some (Syntactic.obligations ~schemas:(schemas_for tree) tree))
          with
          | None -> degraded ~name ~features
          | Some obls ->
            let first = !n_tasks in
            List.iter
              (fun slice ->
                checking_task ~name (fun solver ->
                    Syntactic.check_obligations ~solver ~product:name slice))
              (chunks syn_chunk_size obls);
            checking_task ~name (fun solver -> Semantic.check ~solver tree);
            Sharded { name; features; hash; tree; first;
                      count = !n_tasks - first }))
    in
    let plans = List.map plan_product specs in
    Planned { plans; tasks = Array.of_list (List.rev !tasks) }

(* Rebuild the dispatcher's task array on a fleet worker: same inputs,
   same [skip] list (the products the dispatcher replayed from its
   journal), same deterministic planning — so task index [i] here runs
   exactly the closure the dispatcher's own pool would have run.
   Returns [[||]] when allocation rejects the product line (the
   dispatcher's plan holds no tasks either). *)
let plan_tasks ?(exclusive = []) ?budget ?(certify = false) ?retry ?unsound
    ?(skip = []) ~model ~core ~deltas ~schemas_for ~vm_requests () =
  let errors = ref [] and replayed = ref [] in
  match
    plan_all ~exclusive ~budget ~certify ~retry ~unsound ~inputs_hash:""
      ~resume:[] ~skip ~errors ~replayed ~model ~core ~deltas ~schemas_for
      ~vm_requests
  with
  | Plan_rejected _ -> [||]
  | Planned { tasks; _ } -> tasks

(* Run the full workflow.

   [vm_requests]: per-VM feature selections (possibly partial; the alloc
   checker completes them).  The platform product is the union of the
   completed VM products, matching §III-A: "the platform DTS is the union of
   selected features in both products".

   [budget] installs a solver resource budget for every check in the run;
   exhausted queries degrade to "inconclusive" warnings instead of
   hanging.  [retry] installs an escalation ladder: inconclusive queries
   are re-run with scaled budgets and diversified restarts.

   Crash safety: with [journal] each completed product (and the partition
   check) is appended to the journal as one fsync'd record keyed by a
   content hash of its inputs.  [resume] is a previously loaded journal;
   products whose hash matches a trusted journal entry are replayed —
   trees regenerated (cheap and deterministic) but findings taken from the
   journal, no solver work — and everything else is re-checked.  A
   certifying run only trusts entries that were themselves written by a
   certifying run with zero failures: resumption never fabricates a
   certificate.  Replay is decided in the parent before any task is
   sharded, and only the parent ever writes the journal. *)
let run ?(exclusive = []) ?budget ?(certify = false) ?retry ?unsound
    ?(inputs_hash = "") ?journal ?(resume = []) ?(jobs = 1) ?task_deadline
    ?max_respawns ?mem_limit ?cpu_limit ?runner ~model ~core ~deltas
    ~schemas_for ~vm_requests () =
  let jobs = if jobs <= 0 then Shard.online_cpus () else jobs in
  let errors = ref [] in
  let replayed = ref [] in
  let fresh_solver () = fresh_solver ~certify ~budget ~retry ~unsound () in
  let journal_entry ~kind ~name ~hash ~features ~order ~findings
      ~cert_failures =
    match journal with
    | None -> ()
    | Some sink ->
      Journal.record sink
        { Journal.kind; name; hash; features; order; findings;
          certified = certify; cert_failures }
  in
  (* A journal entry is only worth replaying if the current run's
     certification demands are no stricter than the run that wrote it. *)
  let trusted (e : Journal.entry) =
    (not certify) || (e.Journal.certified && e.Journal.cert_failures = 0)
  in
  (* Canonical-order accumulation of the per-task solver statistics.
     Every task numbers its queries from 0; [absorb] renumbers them into
     one run-wide sequence (products in order, each product's syntactic
     chunks then its semantic task, the partition check last). *)
  let offset = ref 0 in
  let stat_certs = ref [] (* reversed *) in
  let stat_failures = ref [] in
  let stat_retried = ref [] in
  let absorb (r : Shard.result) =
    let r = Shard.renumber ~offset:!offset r in
    offset := !offset + r.Shard.queries;
    stat_certs := List.rev_append r.Shard.certs !stat_certs;
    stat_failures := List.rev_append r.Shard.cert_failures !stat_failures;
    stat_retried := List.rev_append r.Shard.retried !stat_retried;
    r
  in
  let finish ~products ~alloc_findings ~partition_findings ~delta_orders =
    { products; alloc_findings; partition_findings; delta_orders;
      errors = List.rev !errors;
      cert =
        (if certify then
           Some
             { Smt.Solver.enabled = true;
               certs = List.rev !stat_certs;
               failures = List.rev !stat_failures }
         else None);
      retry =
        (match retry with
         | None -> None
         | Some _ ->
           Some
             { Smt.Solver.retry_enabled = !offset > 0;
               total_queries = !offset;
               retried = List.rev !stat_retried });
      replayed = List.rev !replayed;
      (* Read at finish time: the sink degrades at the failing record and
         stays degraded, so this is the run's final durability verdict. *)
      journal_fault =
        (match journal with
         | Some sink -> Journal.degradation sink
         | None -> None) }
  in
  match
    plan_all ~exclusive ~budget ~certify ~retry ~unsound ~inputs_hash ~resume
      ~skip:[] ~errors ~replayed ~model ~core ~deltas ~schemas_for ~vm_requests
  with
  | Plan_rejected findings ->
    finish ~products:[] ~alloc_findings:findings ~partition_findings:[] ~delta_orders:[]
  | Planned { plans; tasks } ->
    let results =
      (* [runner] (the fleet dispatcher) takes the place of the local
         pool when supplied; it receives the replayed product names so
         remote workers can rebuild the identical task array via
         [plan_tasks ~skip].  Everything downstream — merge, journal,
         partition check — is runner-agnostic. *)
      match runner with
      | Some f -> f ~skip:(List.rev !replayed) tasks
      | None ->
        Shard.run_tasks ~jobs ?deadline:task_deadline ?max_respawns ?mem_limit
          ?cpu_limit tasks
    in
    (* Canonical merge: task order == plan order, so absorbing the results
       array front to back renumbers queries identically for every job
       count.  Results of a degraded product's completed tasks still count
       (their queries ran and their certificates are real). *)
    let absorbed = Array.map (Option.map absorb) results in
    let merge = function
      | Done { p; journal_hash } ->
        (match journal_hash with
         | Some hash ->
           journal_entry ~kind:Journal.Product ~name:p.name ~hash
             ~features:p.features
             ~order:(Delta.Apply.order ~selected:p.features deltas)
             ~findings:p.findings ~cert_failures:0
         | None -> ());
        p
      | Sharded { name; features; hash; tree; first; count } ->
        let rs = Array.to_list (Array.sub absorbed first count) in
        if List.exists Option.is_none rs then begin
          (* Last resort: the supervised pool reassigns a dead worker's
             task and retries quarantined poison tasks in-process, so a
             [None] here means the task failed every avenue.  Degrade to
             an isolated diagnostic, exactly like an in-process phase
             failure. *)
          errors :=
            Diag.make ~code:"WORKER"
              "product %s: task failed in workers and in-process retry; \
               product not checked"
              name
            :: !errors;
          { name; features; tree = core; findings = [] }
        end
        else begin
          let rs = List.filter_map Fun.id rs in
          let task_errors = List.concat_map (fun r -> r.Shard.errors) rs in
          if task_errors <> [] then begin
            List.iter (fun d -> errors := d :: !errors) task_errors;
            { name; features; tree = core; findings = [] }
          end
          else begin
            let findings = List.concat_map (fun r -> r.Shard.findings) rs in
            (* Only journal products whose every task completed without an
               isolated error: anything less and the recorded findings
               would not reflect a full check. *)
            journal_entry ~kind:Journal.Product ~name ~hash ~features
              ~order:(Delta.Apply.order ~selected:features deltas)
              ~findings
              ~cert_failures:
                (List.length
                   (List.concat_map (fun r -> r.Shard.cert_failures) rs));
            { name; features; tree; findings }
          end
        end
    in
    let all_products = List.map merge plans in
    let delta_orders =
      List.map
        (fun p -> (p.name, Delta.Apply.order ~selected:p.features deltas))
        all_products
    in
    (* The cross-VM partition check needs every product's tree, so it runs
       in the parent after the merge barrier, on its own fresh solver —
       its queries extend the same canonical numbering. *)
    let partition_findings =
      let hash =
        Journal.partition_hash ~inputs_hash
          ~products:(List.map (fun p -> (p.name, p.features)) all_products)
      in
      match Journal.find resume Journal.Partition "partition" with
      | Some e when e.Journal.hash = hash && trusted e ->
        replayed := "partition" :: !replayed;
        e.Journal.findings
      | _ ->
        let solver = fresh_solver () in
        let task_errors = ref [] in
        let vm_products =
          List.filter (fun p -> p.name <> "platform") all_products
        in
        let platform_tree =
          match List.find_opt (fun p -> p.name = "platform") all_products with
          | Some p -> p.tree
          | None -> core
        in
        let fs =
          guarded ~solver ~errors:task_errors ~what:"partition check"
            ~fallback:[] (fun () ->
              Partition.check ~solver ~platform:platform_tree
                (List.map (fun p -> (p.name, p.tree)) vm_products))
        in
        let rr = Smt.Solver.retry_report solver in
        let cr = Smt.Solver.cert_report solver in
        let r =
          absorb
            { Shard.product = "partition";
              findings = fs;
              errors = List.rev !task_errors;
              queries = rr.Smt.Solver.total_queries;
              certs = (if certify then cr.Smt.Solver.certs else []);
              cert_failures = (if certify then cr.Smt.Solver.failures else []);
              retried = rr.Smt.Solver.retried }
        in
        if r.Shard.errors = [] then
          journal_entry ~kind:Journal.Partition ~name:"partition" ~hash
            ~features:[] ~order:[] ~findings:fs
            ~cert_failures:(List.length r.Shard.cert_failures)
        else List.iter (fun d -> errors := d :: !errors) r.Shard.errors;
        fs
    in
    finish ~products:all_products ~alloc_findings:[] ~partition_findings
      ~delta_orders

let pp_outcome ppf outcome =
  List.iter
    (fun p ->
      Fmt.pf ppf "product %s: features {%s}@." p.name (String.concat ", " p.features);
      (match List.assoc_opt p.name outcome.delta_orders with
       | Some order when order <> [] ->
         Fmt.pf ppf "  delta order: %s@." (String.concat " < " order)
       | _ -> ());
      match p.findings with
      | [] -> Fmt.pf ppf "  all checks passed@."
      | fs -> List.iter (fun f -> Fmt.pf ppf "  %a@." Report.pp f) fs)
    outcome.products;
  List.iter (fun f -> Fmt.pf ppf "%a@." Report.pp f) outcome.alloc_findings;
  (match outcome.partition_findings with
   | [] -> ()
   | fs ->
     Fmt.pf ppf "cross-VM partitioning:@.";
     List.iter (fun f -> Fmt.pf ppf "  %a@." Report.pp f) fs);
  List.iter (fun d -> Fmt.pf ppf "%a@." Diag.pp d) outcome.errors;
  (* Fail-operational disk errors degrade loudly: a run that lost its
     journal must say so in the report, not just on stderr. *)
  (match outcome.journal_fault with
   | None -> ()
   | Some reason ->
     Fmt.pf ppf "%a@." Diag.pp
       (Diag.make ~severity:Diag.Warning ~code:"JOURNAL"
          "journal degraded (%s): journaling disabled for the rest of the \
           run; the journal cannot be resumed from"
          reason));
  (* Resume/replay status deliberately does NOT appear here: a resumed
     run's report must be byte-identical to an uninterrupted one.  The CLI
     reports replays on stderr. *)
  (match outcome.retry with
   | Some r when r.Smt.Solver.retried <> [] ->
     Fmt.pf ppf "%a@." Report.pp_retry r
   | _ -> ());
  match outcome.cert with
  | None -> ()
  | Some r ->
    Fmt.pf ppf "%a@." Report.pp_cert r;
    (* An uncertified verdict is never a silent pass: each failure is a
       structured CERT diagnostic. *)
    List.iter
      (fun msg -> Fmt.pf ppf "%a@." Diag.pp (Diag.make ~code:"CERT" "%s" msg))
      r.Smt.Solver.failures
