(* The end-to-end llhsc workflow (Fig. 2):

      feature model + per-VM requests
        └─ alloc checker (§IV-A) ─ completed products, platform product
      core DTS + delta modules
        └─ delta application per product (§III-B)
      generated DTSs
        └─ syntactic checker (§IV-B) + semantic checker (§IV-C)
      artifacts: checked VM DTSs + platform DTS (+ hypervisor configs,
      rendered by lib/bao from these trees)

   All SMT-based checks share one incremental solver instance per run
   (push/pop scoped), as the paper advocates (§VI).  Each phase runs under
   an isolation guard: an error while building or checking one product is
   converted to a diagnostic (and the solver's scope stack rebalanced) so
   the remaining products are still checked. *)

module T = Devicetree.Tree

type product = {
  name : string;            (* "vm1", "vm2", ..., "platform" *)
  features : string list;   (* the product's concrete features *)
  tree : T.t;
  findings : Report.finding list;
}

type outcome = {
  products : product list;
  alloc_findings : Report.finding list;
  partition_findings : Report.finding list; (* cross-VM checks *)
  delta_orders : (string * string list) list; (* product -> application order *)
  errors : Diag.t list; (* per-phase failures that did not abort the run *)
  cert : Smt.Solver.cert_report option; (* Some iff the run certified *)
}

let ok outcome =
  outcome.errors = []
  && Report.is_clean outcome.alloc_findings
  && Report.is_clean outcome.partition_findings
  && List.for_all (fun p -> Report.is_clean p.findings) outcome.products
  && (match outcome.cert with
     | Some r -> r.Smt.Solver.failures = []
     | None -> true)

(* Run [f] with per-phase isolation: a known error becomes a diagnostic
   prefixed with [what], the solver scope stack is rebalanced (a failing
   phase may die between push and pop), and [fallback] stands in for the
   result.  Unknown exceptions still propagate. *)
let guarded ~solver ~errors ~what ~fallback f =
  let depth = Smt.Solver.num_scopes solver in
  try f ()
  with e -> (
    match Diag.of_exn e with
    | None -> raise e
    | Some d ->
      while Smt.Solver.num_scopes solver > depth do
        Smt.Solver.pop solver
      done;
      errors := { d with Diag.message = what ^ ": " ^ d.Diag.message } :: !errors;
      fallback)

(* Generate and check a single product. *)
let build_product ~solver ~core ~deltas ~schemas_for ~name ~features =
  match Delta.Apply.generate ~core ~deltas ~selected:features with
  | exception Delta.Apply.Error e ->
    let finding =
      Report.finding ~checker:"delta" ~node_path:(Option.value ~default:"?" e.Delta.Apply.delta)
        ~loc:e.Delta.Apply.loc "product %s: %s" name e.Delta.Apply.message
    in
    { name; features; tree = core; findings = [ finding ] }
  | tree ->
    let schemas = schemas_for tree in
    let syntactic = Syntactic.check ~solver ~schemas ~product:name tree in
    let semantic = Semantic.check ~solver tree in
    { name; features; tree; findings = syntactic @ semantic }

(* Run the full workflow.

   [vm_requests]: per-VM feature selections (possibly partial; the alloc
   checker completes them).  The platform product is the union of the
   completed VM products, matching §III-A: "the platform DTS is the union of
   selected features in both products".

   [budget] installs a solver resource budget for every check in the run;
   exhausted queries degrade to "inconclusive" warnings instead of
   hanging. *)
let run ?(exclusive = []) ?budget ?(certify = false) ~model ~core ~deltas
    ~schemas_for ~vm_requests () =
  let solver = Smt.Solver.create ~certify () in
  Smt.Solver.set_budget solver budget;
  let errors = ref [] in
  let finish ~products ~alloc_findings ~partition_findings ~delta_orders =
    { products; alloc_findings; partition_findings; delta_orders;
      errors = List.rev !errors;
      cert = (if certify then Some (Smt.Solver.cert_report solver) else None) }
  in
  let vms = List.length vm_requests in
  let requests =
    List.mapi (fun i selected -> Alloc.request (i + 1) selected) vm_requests
  in
  match
    guarded ~solver ~errors ~what:"allocation" ~fallback:(Alloc.Rejected []) (fun () ->
        Alloc.allocate ~exclusive model ~vms ~requests)
  with
  | Alloc.Rejected findings ->
    finish ~products:[] ~alloc_findings:findings ~partition_findings:[] ~delta_orders:[]
  | Alloc.Allocated { vms = completed; platform } ->
    let build ~name ~features =
      guarded ~solver ~errors ~what:("product " ^ name)
        ~fallback:{ name; features; tree = core; findings = [] }
        (fun () -> build_product ~solver ~core ~deltas ~schemas_for ~name ~features)
    in
    let vm_products =
      List.map
        (fun (vm, features) ->
          let name = Printf.sprintf "vm%d" vm in
          build ~name ~features)
        completed
    in
    let platform_product = build ~name:"platform" ~features:platform in
    let delta_orders =
      List.map
        (fun p -> (p.name, Delta.Apply.order ~selected:p.features deltas))
        (vm_products @ [ platform_product ])
    in
    let partition_findings =
      guarded ~solver ~errors ~what:"partition check" ~fallback:[] (fun () ->
          Partition.check ~solver ~platform:platform_product.tree
            (List.map (fun p -> (p.name, p.tree)) vm_products))
    in
    finish
      ~products:(vm_products @ [ platform_product ])
      ~alloc_findings:[] ~partition_findings ~delta_orders

let pp_outcome ppf outcome =
  List.iter
    (fun p ->
      Fmt.pf ppf "product %s: features {%s}@." p.name (String.concat ", " p.features);
      (match List.assoc_opt p.name outcome.delta_orders with
       | Some order when order <> [] ->
         Fmt.pf ppf "  delta order: %s@." (String.concat " < " order)
       | _ -> ());
      match p.findings with
      | [] -> Fmt.pf ppf "  all checks passed@."
      | fs -> List.iter (fun f -> Fmt.pf ppf "  %a@." Report.pp f) fs)
    outcome.products;
  List.iter (fun f -> Fmt.pf ppf "%a@." Report.pp f) outcome.alloc_findings;
  (match outcome.partition_findings with
   | [] -> ()
   | fs ->
     Fmt.pf ppf "cross-VM partitioning:@.";
     List.iter (fun f -> Fmt.pf ppf "  %a@." Report.pp f) fs);
  List.iter (fun d -> Fmt.pf ppf "%a@." Diag.pp d) outcome.errors;
  match outcome.cert with
  | None -> ()
  | Some r ->
    Fmt.pf ppf "%a@." Report.pp_cert r;
    (* An uncertified verdict is never a silent pass: each failure is a
       structured CERT diagnostic. *)
    List.iter
      (fun msg -> Fmt.pf ppf "%a@." Diag.pp (Diag.make ~code:"CERT" "%s" msg))
      r.Smt.Solver.failures
