(** Inter-VM partitioning checks across the generated products: CPU
    exclusivity (error), RAM disjointness across VMs (warning by default —
    the paper's running example shares both banks), pass-through device
    sharing (warning), and containment of every VM region in the platform
    (error).  Overlap/containment are discharged on the bit-vector
    solver. *)

(** [check ?solver ?memory_overlap_severity ~platform vms] with [vms] the
    named per-VM trees.  Without a caller-supplied [solver],
    [~certify:true] certifies every solver verdict and appends an error
    finding per uncertified query. *)
val check :
  ?solver:Smt.Solver.t ->
  ?certify:bool ->
  ?memory_overlap_severity:Report.severity ->
  platform:Devicetree.Tree.t ->
  (string * Devicetree.Tree.t) list ->
  Report.finding list
