(** The syntactic checker (§IV-B): dt-schema-style constraints discharged on
    the SMT solver ({!check}), and the procedural dt-schema baseline
    ({!check_direct}).  Both agree on pass/fail per node; the SMT route
    additionally yields unsat cores naming the conflicting rules. *)

(** Keep the actionable (schema-rule) entries of a core, dropping the
    obligations stating facts about the binding. *)
val summarize_core : string list -> string list

(** [check ?solver ~schemas ?product tree] checks every applicable
    node/schema pair.  [product] prefixes solver symbols so several products
    can share one incremental solver.  Without a caller-supplied [solver],
    [~certify:true] certifies every solver verdict (see
    {!Smt.Solver.create}) and appends an error finding per uncertified
    query; with a supplied solver the caller collects certification results
    itself. *)
val check :
  ?solver:Smt.Solver.t ->
  ?certify:bool ->
  schemas:Schema.Binding.t list ->
  ?product:string ->
  Devicetree.Tree.t ->
  Report.finding list

(** The dt-schema baseline: same judgements, no solver, no cores. *)
val check_direct :
  schemas:Schema.Binding.t list -> Devicetree.Tree.t -> Report.finding list
