(** The syntactic checker (§IV-B): dt-schema-style constraints discharged on
    the SMT solver ({!check}), and the procedural dt-schema baseline
    ({!check_direct}).  Both agree on pass/fail per node; the SMT route
    additionally yields unsat cores naming the conflicting rules. *)

(** Keep the actionable (schema-rule) entries of a core, dropping the
    obligations stating facts about the binding. *)
val summarize_core : string list -> string list

(** One unit of syntactic checking: a (node path, node, schema) pair whose
    verdict is independent of every other obligation — the property the
    pipeline's worker pool relies on to shard a product's check. *)
type obligation = string * Devicetree.Tree.t * Schema.Binding.t

(** All applicable node/schema pairs of a tree, in preorder (the order
    {!check} discharges them). *)
val obligations :
  schemas:Schema.Binding.t list -> Devicetree.Tree.t -> obligation list

(** Check an explicit slice of obligations; findings come back in slice
    order.  Same solver-ownership contract as {!check}. *)
val check_obligations :
  ?solver:Smt.Solver.t ->
  ?certify:bool ->
  ?product:string ->
  obligation list ->
  Report.finding list

(** [check ?solver ~schemas ?product tree] checks every applicable
    node/schema pair.  [product] prefixes solver symbols so several products
    can share one incremental solver.  Without a caller-supplied [solver],
    [~certify:true] certifies every solver verdict (see
    {!Smt.Solver.create}) and appends an error finding per uncertified
    query; with a supplied solver the caller collects certification results
    itself. *)
val check :
  ?solver:Smt.Solver.t ->
  ?certify:bool ->
  schemas:Schema.Binding.t list ->
  ?product:string ->
  Devicetree.Tree.t ->
  Report.finding list

(** The dt-schema baseline: same judgements, no solver, no cores. *)
val check_direct :
  schemas:Schema.Binding.t list -> Devicetree.Tree.t -> Report.finding list
