/* POSIX bindings the worker pool needs and the OCaml Unix library does
   not expose: setrlimit (per-worker resource guards) and the online CPU
   count (--jobs 0 auto-detection).  Kept deliberately tiny: both calls
   return a plain value and never raise, so they are safe to use in a
   freshly forked child before the OCaml runtime does anything else. */

#include <caml/mlvalues.h>

#include <sys/resource.h>
#include <unistd.h>

/* (resource, soft, hard) -> success?  resource: 0 = RLIMIT_AS (bytes),
   1 = RLIMIT_CPU (seconds).  Never raises: a worker installs its guards
   best-effort and a failure must not crash the pool. */
CAMLprim value llhsc_set_rlimit(value vres, value vsoft, value vhard)
{
  struct rlimit rl;
  int res;
  switch (Long_val(vres)) {
  case 0: res = RLIMIT_AS; break;
  case 1: res = RLIMIT_CPU; break;
  default: return Val_false;
  }
  rl.rlim_cur = (rlim_t)Long_val(vsoft);
  rl.rlim_max = (rlim_t)Long_val(vhard);
  return Val_bool(setrlimit(res, &rl) == 0);
}

/* Number of online processors; >= 1 even when sysconf fails. */
CAMLprim value llhsc_online_cpus(value unit)
{
  long n = 1;
  (void)unit;
#ifdef _SC_NPROCESSORS_ONLN
  n = sysconf(_SC_NPROCESSORS_ONLN);
#endif
  if (n < 1) n = 1;
  return Val_long(n);
}
