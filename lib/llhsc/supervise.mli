(** Transport-agnostic supervision core, shared by the fork-pipe worker
    pool ({!Shard}) and the socket fleet dispatcher.

    Owns the task-progress state that is independent of the transport:
    the pending queue, a first-wins results array (duplicate-result
    suppression: a reassigned task may legitimately complete twice — the
    first valid result wins and later copies are dropped, which is what
    makes the merge exactly-once), per-task crash counts with poison
    quarantine after two worker losses, and per-worker lease clocks with
    deadlines.  Transports hold only their pids/pipes or
    sockets/decoders and drive this machine. *)

(** Per-worker lease clocks: the in-flight (task, clock-start) pairs of
    one worker.  The fork pool keeps at most one per worker; the fleet
    dispatcher up to its per-worker in-flight bound. *)
module Lease : sig
  type t

  val create : unit -> t

  (** [start l task now] — begin (or restart) the clock for [task]. *)
  val start : t -> int -> float -> unit

  (** Restart the clock iff [task] is leased here (a heartbeat for a
      task this worker no longer owns is ignored). *)
  val beat : t -> int -> float -> unit

  (** Drop the lease (task completed or reassigned elsewhere). *)
  val finish : t -> int -> unit

  val tasks : t -> int list
  val count : t -> int

  (** Tasks whose clock has outlived [deadline] seconds. *)
  val expired : t -> deadline:float -> now:float -> int list

  (** Seconds until the earliest lease here expires ([None] when the
      worker is idle); may be negative when already overdue. *)
  val next_expiry : t -> deadline:float -> now:float -> float option
end

type 'r t

(** [create n] — [n] tasks, all pending, none resolved. *)
val create : int -> 'r t

val task_count : 'r t -> int

(** The first-wins results array (indexed by task). *)
val results : 'r t -> 'r option array

val has_pending : 'r t -> bool
val pending_count : 'r t -> int

(** Pop the next pending task for dispatch. *)
val next : 'r t -> int option

(** Requeue a task at the front (it was popped but could not be
    dispatched after all). *)
val requeue : 'r t -> int -> unit

(** First valid result wins; [`Duplicate] results (a reassigned task
    completing twice) are dropped without touching the merge. *)
val resolve : 'r t -> int -> 'r -> [ `Fresh | `Duplicate ]

val crashes : 'r t -> int -> int

(** Quarantined as poison after crashing two workers; excluded from the
    queue until the transport's in-process sweep. *)
val is_quarantined : 'r t -> int -> bool

(** A worker died/vanished holding this task.  [`Reassign]: requeued at
    the front.  [`Quarantine k]: the [k]-th crash poisoned it.
    [`Resolved]: the task had already produced a result; nothing to do. *)
val record_crash : 'r t -> int -> [ `Reassign | `Quarantine of int | `Resolved ]

(** Still-open work: resolved + quarantined < n.  (The transport's loop
    condition; quarantined tasks are finished as far as the worker pool
    is concerned — they wait for the in-process sweep.) *)
val unfinished : 'r t -> bool

(** Every task index with no result yet (quarantined ones included) —
    the in-process sweep's work list. *)
val unresolved : 'r t -> int list
