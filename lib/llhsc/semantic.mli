(** The semantic checker (§IV-C): properties no purely syntactic tool can
    express, discharged on the bit-vector solver.

    - memory consistency (formula (7)): no two memory-mapped regions of the
      tree intersect; a SAT answer yields the collision witness address;
    - interrupt-line uniqueness per interrupt parent (Distinct constraint);
    - a 64->32-bit #address-cells truncation lint. *)

type region_at = {
  owner : string; (** node path *)
  region : Devicetree.Addresses.region;
  loc : Devicetree.Loc.t;
}

(** Is this node enabled (no [status] property, or "okay"/"ok")?  Disabled
    devices claim no resources. *)
val is_enabled : Devicetree.Tree.t -> string -> bool

(** Regions participating in the overlap check: decoded under the correct
    cell context, translated to the root address space; bus-private regs
    (e.g. cpu ids), zero-sized regions and disabled nodes are excluded. *)
val collect_regions : Devicetree.Tree.t -> region_at list

(** [contains ~x r] — the term "address x lies in [base, base+size)".
    Region ends are computed on constants with explicit wrap handling. *)
val contains : x:Smt.Term.t -> Devicetree.Addresses.region -> Smt.Term.t

(** Does this pair of regions intersect?  [`Overlap w] carries the witness
    address (pinned to [max base_a base_b]); [`Inconclusive] means the
    solver's resource budget ran out before a verdict.  Runs in its own
    solver scope, so one incremental solver serves many queries. *)
val pair_overlap :
  Smt.Solver.t ->
  region_at ->
  region_at ->
  [ `Overlap of int64 | `Disjoint | `Inconclusive ]

(** Memory consistency of a whole tree (formula (7)); one finding per
    colliding pair.  [solver] defaults to a fresh instance.  [strategy]
    selects the paper-faithful all-pairs formulation ([`Pairwise]) or the
    sweep-line prefilter ([`Sweep], default) that only sends candidate
    pairs to the solver; both give identical verdicts. *)
val check_memory :
  ?solver:Smt.Solver.t ->
  ?strategy:[ `Sweep | `Pairwise ] ->
  Devicetree.Tree.t ->
  Report.finding list

(** Interrupt-line uniqueness per interrupt parent. *)
val check_interrupts : ?solver:Smt.Solver.t -> Devicetree.Tree.t -> Report.finding list

(** Truncation lint: zero-sized regions and duplicated bases, the symptoms
    of reading 64-bit reg values under 32-bit cells (warnings). *)
val check_truncation : Devicetree.Tree.t -> Report.finding list

(** dtc-style unit-address lints: duplicate unit addresses among siblings,
    and a unit address disagreeing with the node's first reg base
    (warnings). *)
val check_unit_addresses : Devicetree.Tree.t -> Report.finding list

(** All semantic checks on one incremental solver instance.  Without a
    caller-supplied [solver], [~certify:true] certifies every solver
    verdict and appends an error finding per uncertified query. *)
val check :
  ?solver:Smt.Solver.t -> ?certify:bool -> Devicetree.Tree.t -> Report.finding list
