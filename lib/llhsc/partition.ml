(* Inter-VM partitioning checks — the safety requirement behind static
   partitioning ("one processor is exclusively assigned to a single VM,
   while the main memory is partitioned between the two VMs", §I-A), checked
   across the *set* of generated VM DTSs rather than inside one tree:

   - cpu-exclusive: the same CPU id must not appear in two VMs (error;
     the alloc checker enforces this at the feature level, this check
     re-verifies it on the generated artifacts);
   - memory-disjoint: RAM regions of different VMs must not overlap
     (warning by default: the paper's own running example gives both VMs
     both banks, cf. Listing 6 "without partitioning");
   - device-shared: the same pass-through MMIO region mapped into several
     VMs (warning: sometimes intentional, never silent);
   - containment: every VM region must lie inside some platform region of
     the same kind (error) — the VM cannot be given hardware the platform
     does not have.

   Overlap and containment questions are discharged on the bit-vector
   solver, reusing the semantic checker's region machinery. *)

module T = Devicetree.Tree
module Addr = Devicetree.Addresses
module Term = Smt.Term
module Solver = Smt.Solver

type vm_regions = {
  vm : string;
  memory : Semantic.region_at list;
  devices : Semantic.region_at list;
  cpu_ids : int64 list;
}

let cpu_ids tree =
  match T.find tree "/cpus" with
  | None -> []
  | Some cpus ->
    List.filter_map
      (fun (c : T.t) ->
        let is_cpu =
          match T.get_prop c "device_type" with
          | Some p -> T.prop_string p = Some "cpu"
          | None -> Devicetree.Ast.base_name c.T.name = "cpu"
        in
        if not is_cpu then None
        else
          match T.get_prop c "reg" with
          | Some p -> (match T.prop_u32s p with id :: _ -> Some id | [] -> None)
          | None -> None)
      cpus.T.children

let is_memory_path tree path =
  match T.find tree path with
  | Some node ->
    (match T.get_prop node "device_type" with
     | Some p -> T.prop_string p = Some "memory"
     | None -> false)
  | None -> false

let is_interrupt_controller tree path =
  match T.find tree path with
  | Some node -> Devicetree.Interrupts.is_controller node
  | None -> false

let classify ~vm tree =
  let memory, devices =
    List.partition (fun (r : Semantic.region_at) -> is_memory_path tree r.Semantic.owner)
      (Semantic.collect_regions tree)
  in
  (* Interrupt controllers are virtualised by the hypervisor, not
     passed through; sharing them across VMs is the normal case and is
     excluded from the device-sharing warning. *)
  let devices =
    List.filter
      (fun (r : Semantic.region_at) -> not (is_interrupt_controller tree r.Semantic.owner))
      devices
  in
  { vm; memory; devices; cpu_ids = cpu_ids tree }

(* [r] fully inside the union of [banks]?  Checked by refutation: an address
   of [r] outside every bank is sought; UNSAT proves containment.  (For the
   interval regions at hand, SAT yields a witness address.) *)
let contained_in solver (r : Semantic.region_at) banks =
  Solver.push solver;
  let x = Term.bv_var "containment-witness" ~width:64 in
  Solver.assert_ solver (Semantic.contains ~x r.Semantic.region);
  List.iter
    (fun (b : Semantic.region_at) ->
      Solver.assert_ solver (Term.not_ (Semantic.contains ~x b.Semantic.region)))
    banks;
  let result =
    match Solver.check solver with
    | Solver.Sat -> `Witness (Solver.get_bv solver x) (* witness outside all banks *)
    | Solver.Unsat _ -> `Contained
    | Solver.Unknown -> `Inconclusive
  in
  Solver.pop solver;
  result

let rec pairs = function [] -> [] | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

(* Cross-VM checks over the generated products.  As in the other checkers,
   [certify] only takes effect on a solver we create ourselves. *)
let check ?solver ?(certify = false) ?(memory_overlap_severity = Report.Warning)
    ~platform vms =
  let owned = solver = None in
  let solver =
    match solver with Some s -> s | None -> Solver.create ~certify ()
  in
  let platform_r = classify ~vm:"platform" platform in
  let vm_rs = List.map (fun (name, tree) -> classify ~vm:name tree) vms in
  let findings = ref [] in
  let push f = findings := f :: !findings in

  (* CPU exclusivity. *)
  List.iter
    (fun (a, b) ->
      let shared = List.filter (fun id -> List.mem id b.cpu_ids) a.cpu_ids in
      List.iter
        (fun id ->
          push
            (Report.finding ~checker:"partition" ~node_path:"/cpus"
               "CPU %Ld assigned to both %s and %s" id a.vm b.vm))
        shared)
    (pairs vm_rs);

  (* Memory disjointness across VMs. *)
  List.iter
    (fun (a, b) ->
      List.iter
        (fun (ra : Semantic.region_at) ->
          List.iter
            (fun (rb : Semantic.region_at) ->
              match Semantic.pair_overlap solver ra rb with
              | `Disjoint -> ()
              | `Overlap witness ->
                push
                  (Report.finding ~severity:memory_overlap_severity ~checker:"partition"
                     ~node_path:ra.Semantic.owner ~loc:ra.Semantic.loc
                     "memory of %s %a overlaps memory of %s %a (at 0x%Lx); RAM is not partitioned"
                     a.vm Addr.pp_region ra.Semantic.region b.vm Addr.pp_region
                     rb.Semantic.region witness)
              | `Inconclusive ->
                push
                  (Report.finding ~severity:Report.Warning ~checker:"partition"
                     ~node_path:ra.Semantic.owner ~loc:ra.Semantic.loc
                     "inconclusive: solver budget exhausted while checking memory of %s %a against %s %a"
                     a.vm Addr.pp_region ra.Semantic.region b.vm Addr.pp_region
                     rb.Semantic.region))
            b.memory)
        a.memory)
    (pairs vm_rs);

  (* Device sharing across VMs (same region in both). *)
  List.iter
    (fun (a, b) ->
      List.iter
        (fun (ra : Semantic.region_at) ->
          List.iter
            (fun (rb : Semantic.region_at) ->
              if ra.Semantic.region = rb.Semantic.region then
                push
                  (Report.finding ~severity:Report.Warning ~checker:"partition"
                     ~node_path:ra.Semantic.owner ~loc:ra.Semantic.loc
                     "device %a mapped into both %s and %s" Addr.pp_region
                     ra.Semantic.region a.vm b.vm))
            b.devices)
        a.devices)
    (pairs vm_rs);

  (* Containment in the platform. *)
  List.iter
    (fun vm_r ->
      let check_contained kind regions banks =
        List.iter
          (fun (r : Semantic.region_at) ->
            if banks = [] then
              push
                (Report.finding ~checker:"partition" ~node_path:r.Semantic.owner
                   ~loc:r.Semantic.loc "%s: platform has no %s regions to contain %a" vm_r.vm
                   kind Addr.pp_region r.Semantic.region)
            else
              match contained_in solver r banks with
              | `Contained -> ()
              | `Witness witness ->
                push
                  (Report.finding ~checker:"partition" ~node_path:r.Semantic.owner
                     ~loc:r.Semantic.loc
                     "%s: %s region %a is not backed by the platform (address 0x%Lx is outside every platform region)"
                     vm_r.vm kind Addr.pp_region r.Semantic.region witness)
              | `Inconclusive ->
                push
                  (Report.finding ~severity:Report.Warning ~checker:"partition"
                     ~node_path:r.Semantic.owner ~loc:r.Semantic.loc
                     "inconclusive: solver budget exhausted while checking %s: %s region %a containment"
                     vm_r.vm kind Addr.pp_region r.Semantic.region))
          regions
      in
      check_contained "memory" vm_r.memory platform_r.memory;
      check_contained "device" vm_r.devices (platform_r.devices @ platform_r.memory);
      (* CPUs must exist on the platform. *)
      List.iter
        (fun id ->
          if not (List.mem id platform_r.cpu_ids) then
            push
              (Report.finding ~checker:"partition" ~node_path:"/cpus"
                 "%s: CPU %Ld does not exist on the platform" vm_r.vm id))
        vm_r.cpu_ids)
    vm_rs;

  let result = List.rev !findings in
  if owned && certify then
    result @ Report.cert_findings (Solver.cert_report solver)
  else result
