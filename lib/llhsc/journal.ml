(* Append-only JSONL journal for crash-safe pipeline runs.  See the .mli
   for the format contract; the important invariants live in [record]:
   one complete line per entry, fsync'd before control returns, so the
   window a SIGKILL can lose is exactly one in-flight record. *)

type kind = Product | Partition

type entry = {
  kind : kind;
  name : string;
  hash : string;
  features : string list;
  order : string list;
  findings : Report.finding list;
  certified : bool;
  cert_failures : int;
}

let version = 1

(* --- hashes ---------------------------------------------------------------- *)

(* '\x00' cannot appear in names/features (they come from identifiers and
   file bytes are hashed before joining), so the join is injective enough
   for staleness detection. *)
let digest_parts parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))
let inputs_hash ~parts = digest_parts ("llhsc-inputs" :: parts)

let product_hash ~inputs_hash ~name ~features =
  digest_parts ("product" :: inputs_hash :: name :: features)

let partition_hash ~inputs_hash ~products =
  digest_parts
    ("partition" :: inputs_hash
    :: List.concat_map (fun (name, features) -> name :: features) products)

(* --- entry <-> JSON -------------------------------------------------------- *)

let severity_to_string : Report.severity -> string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Report.Error
  | "warning" -> Some Report.Warning
  | "info" -> Some Report.Info
  | _ -> None

let finding_to_json (f : Report.finding) =
  Json.Obj
    [
      ("severity", Json.Str (severity_to_string f.severity));
      ("checker", Json.Str f.checker);
      ("node_path", Json.Str f.node_path);
      ("message", Json.Str f.message);
      ( "loc",
        Json.Obj
          [
            ("file", Json.Str f.loc.Devicetree.Loc.file);
            ("line", Json.Int f.loc.Devicetree.Loc.line);
            ("col", Json.Int f.loc.Devicetree.Loc.col);
          ] );
      ("core", Json.List (List.map (fun s -> Json.Str s) f.core));
    ]

let ( let* ) = Option.bind

let finding_of_json j =
  let* severity = Option.bind Json.(member "severity" j) Json.to_str in
  let* severity = severity_of_string severity in
  let* checker = Option.bind Json.(member "checker" j) Json.to_str in
  let* node_path = Option.bind Json.(member "node_path" j) Json.to_str in
  let* message = Option.bind Json.(member "message" j) Json.to_str in
  let* loc = Json.member "loc" j in
  let* file = Option.bind (Json.member "file" loc) Json.to_str in
  let* line = Option.bind (Json.member "line" loc) Json.to_int in
  let* col = Option.bind (Json.member "col" loc) Json.to_int in
  let* core = Option.bind Json.(member "core" j) Json.to_str_list in
  Some
    {
      Report.severity;
      checker;
      node_path;
      message;
      loc = Devicetree.Loc.make ~file ~line ~col;
      core;
    }

let kind_to_string = function Product -> "product" | Partition -> "partition"

let kind_of_string = function
  | "product" -> Some Product
  | "partition" -> Some Partition
  | _ -> None

let entry_to_json e =
  Json.Obj
    [
      ("kind", Json.Str (kind_to_string e.kind));
      ("name", Json.Str e.name);
      ("hash", Json.Str e.hash);
      ("features", Json.List (List.map (fun s -> Json.Str s) e.features));
      ("order", Json.List (List.map (fun s -> Json.Str s) e.order));
      ("findings", Json.List (List.map finding_to_json e.findings));
      ("certified", Json.Bool e.certified);
      ("cert_failures", Json.Int e.cert_failures);
    ]

let entry_of_json j =
  let* kind = Option.bind Json.(member "kind" j) Json.to_str in
  let* kind = kind_of_string kind in
  let* name = Option.bind Json.(member "name" j) Json.to_str in
  let* hash = Option.bind Json.(member "hash" j) Json.to_str in
  let* features = Option.bind Json.(member "features" j) Json.to_str_list in
  let* order = Option.bind Json.(member "order" j) Json.to_str_list in
  let* findings = Option.bind Json.(member "findings" j) Json.to_list in
  let findings' = List.filter_map finding_of_json findings in
  if List.length findings' <> List.length findings then None
  else
    let* certified = Option.bind Json.(member "certified" j) Json.to_bool in
    let* cert_failures = Option.bind Json.(member "cert_failures" j) Json.to_int in
    Some { kind; name; hash; features; order; findings = findings'; certified; cert_failures }

let header_json ~inputs_hash =
  Json.Obj [ ("llhsc-journal", Json.Int version); ("inputs", Json.Str inputs_hash) ]

let header_of_json j =
  match Option.bind Json.(member "llhsc-journal" j) Json.to_int with
  | Some v when v = version -> Option.bind (Json.member "inputs" j) Json.to_str
  | _ -> None

(* --- fault-injection kill hooks -------------------------------------------- *)

(* The fault harness simulates a crash at a seeded point by having the
   journal SIGKILL its own process: either right after the n-th record
   lands (clean cut between lines) or halfway through writing it (torn
   final line, which [load] must skip). *)
let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

let env_int name =
  match Sys.getenv_opt name with None -> None | Some v -> int_of_string_opt v

(* --- sink ------------------------------------------------------------------ *)

type sink = { oc : out_channel; mutable written : int }

(* fsync is retried on EINTR: a stray signal must not let a record slip
   through unsynced (the whole point of the journal is that a SIGKILL
   right after [record] returns loses nothing). *)
let sync oc =
  flush oc;
  try Util.retry_eintr (fun () -> Unix.fsync (Unix.descr_of_out_channel oc))
  with Unix.Unix_error _ -> ()

let open_ ~path ~inputs_hash =
  let exists = Sys.file_exists path in
  let fresh =
    (not exists)
    || (try (Util.retry_eintr (fun () -> Unix.stat path)).Unix.st_size = 0
        with Unix.Unix_error _ -> true)
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if fresh then begin
    output_string oc (Json.to_string (header_json ~inputs_hash));
    output_char oc '\n';
    sync oc
  end;
  { oc; written = 0 }

(* A record line is "<json>\t<crc32 of json, 8 lowercase hex digits>".
   [Json.to_string] escapes control characters, so a raw tab can never
   appear inside the JSON itself and the last tab splits unambiguously.
   The checksum catches corrupt-but-still-parseable lines (bit rot, a
   partial overwrite that happens to stay valid JSON) that the parse
   failure heuristic cannot; lines without a tab are accepted as the
   older checksum-less format. *)
let checksummed line = Printf.sprintf "%s\t%08x" line (Util.crc32 line)

(* [Some body] when the line is an old-format line or a checksummed line
   whose CRC verifies; [None] when the checksum is torn or wrong. *)
let verify_line line =
  match String.rindex_opt line '\t' with
  | None -> Some line (* pre-checksum journal *)
  | Some t ->
    let body = String.sub line 0 t in
    let crc = String.sub line (t + 1) (String.length line - t - 1) in
    if
      String.length crc = 8
      && String.for_all
           (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
           crc
      && int_of_string_opt ("0x" ^ crc) = Some (Util.crc32 body)
    then Some body
    else None

let record sink entry =
  let line = checksummed (Json.to_string (entry_to_json entry)) in
  sink.written <- sink.written + 1;
  (match env_int "LLHSC_FAULT_KILL_MID_RECORD" with
   | Some n when n = sink.written ->
     (* Torn write: half the record, no newline, then die. *)
     output_string sink.oc (String.sub line 0 (String.length line / 2));
     sync sink.oc;
     kill_self ()
   | _ -> ());
  output_string sink.oc line;
  output_char sink.oc '\n';
  sync sink.oc;
  (match env_int "LLHSC_FAULT_KILL_AFTER_RECORDS" with
   | Some n when n = sink.written -> kill_self ()
   | _ -> ());
  (* Unlike the SIGKILL hooks above, this one is catchable: it exercises
     the CLI's graceful-interrupt path (close the journal, exit 128+15)
     rather than simulating a crash. *)
  match env_int "LLHSC_FAULT_TERM_AFTER_RECORDS" with
  | Some n when n = sink.written -> Unix.kill (Unix.getpid ()) Sys.sigterm
  | _ -> ()

let close sink = close_out sink.oc

(* --- load ------------------------------------------------------------------ *)

let read_lines path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        Some (List.rev acc)
    in
    go []

let load ~path ~inputs_hash =
  match read_lines path with
  | None | Some [] -> []
  | Some (header :: rest) ->
    let header_ok =
      match Json.parse header with
      | Ok j -> header_of_json j = Some inputs_hash
      | Error _ -> false
    in
    if not header_ok then []
    else
      let parse line =
        match verify_line line with
        | None -> None (* checksum mismatch: corrupt line, skip *)
        | Some body -> (
          match Json.parse body with
          | Ok j -> entry_of_json j
          | Error _ -> None (* torn final record, or garbage: skip *))
      in
      (* Last record wins per (kind, name): a resumed run appends fresher
         verdicts rather than rewriting the file. *)
      let tbl = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun line ->
          match parse line with
          | None -> ()
          | Some e ->
            let key = (e.kind, e.name) in
            if not (Hashtbl.mem tbl key) then order := key :: !order;
            Hashtbl.replace tbl key e)
        rest;
      List.rev_map (fun key -> Hashtbl.find tbl key) !order

let find entries kind name =
  List.find_opt (fun e -> e.kind = kind && e.name = name) entries
