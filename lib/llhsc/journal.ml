(* Append-only JSONL journal for crash-safe pipeline runs.  See the .mli
   for the format contract; the important invariants live in [record]:
   one complete line per entry, fsync'd before control returns, so the
   window a SIGKILL can lose is exactly one in-flight record. *)

type kind = Product | Partition

type entry = {
  kind : kind;
  name : string;
  hash : string;
  features : string list;
  order : string list;
  findings : Report.finding list;
  certified : bool;
  cert_failures : int;
}

let version = 1

(* --- hashes ---------------------------------------------------------------- *)

(* '\x00' cannot appear in names/features (they come from identifiers and
   file bytes are hashed before joining), so the join is injective enough
   for staleness detection. *)
let digest_parts parts = Digest.to_hex (Digest.string (String.concat "\x00" parts))
let inputs_hash ~parts = digest_parts ("llhsc-inputs" :: parts)

let product_hash ~inputs_hash ~name ~features =
  digest_parts ("product" :: inputs_hash :: name :: features)

let partition_hash ~inputs_hash ~products =
  digest_parts
    ("partition" :: inputs_hash
    :: List.concat_map (fun (name, features) -> name :: features) products)

(* --- entry <-> JSON -------------------------------------------------------- *)

let severity_to_string : Report.severity -> string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Report.Error
  | "warning" -> Some Report.Warning
  | "info" -> Some Report.Info
  | _ -> None

let finding_to_json (f : Report.finding) =
  Json.Obj
    [
      ("severity", Json.Str (severity_to_string f.severity));
      ("checker", Json.Str f.checker);
      ("node_path", Json.Str f.node_path);
      ("message", Json.Str f.message);
      ( "loc",
        Json.Obj
          [
            ("file", Json.Str f.loc.Devicetree.Loc.file);
            ("line", Json.Int f.loc.Devicetree.Loc.line);
            ("col", Json.Int f.loc.Devicetree.Loc.col);
          ] );
      ("core", Json.List (List.map (fun s -> Json.Str s) f.core));
    ]

let ( let* ) = Option.bind

let finding_of_json j =
  let* severity = Option.bind Json.(member "severity" j) Json.to_str in
  let* severity = severity_of_string severity in
  let* checker = Option.bind Json.(member "checker" j) Json.to_str in
  let* node_path = Option.bind Json.(member "node_path" j) Json.to_str in
  let* message = Option.bind Json.(member "message" j) Json.to_str in
  let* loc = Json.member "loc" j in
  let* file = Option.bind (Json.member "file" loc) Json.to_str in
  let* line = Option.bind (Json.member "line" loc) Json.to_int in
  let* col = Option.bind (Json.member "col" loc) Json.to_int in
  let* core = Option.bind Json.(member "core" j) Json.to_str_list in
  Some
    {
      Report.severity;
      checker;
      node_path;
      message;
      loc = Devicetree.Loc.make ~file ~line ~col;
      core;
    }

let kind_to_string = function Product -> "product" | Partition -> "partition"

let kind_of_string = function
  | "product" -> Some Product
  | "partition" -> Some Partition
  | _ -> None

let entry_to_json e =
  Json.Obj
    [
      ("kind", Json.Str (kind_to_string e.kind));
      ("name", Json.Str e.name);
      ("hash", Json.Str e.hash);
      ("features", Json.List (List.map (fun s -> Json.Str s) e.features));
      ("order", Json.List (List.map (fun s -> Json.Str s) e.order));
      ("findings", Json.List (List.map finding_to_json e.findings));
      ("certified", Json.Bool e.certified);
      ("cert_failures", Json.Int e.cert_failures);
    ]

let entry_of_json j =
  let* kind = Option.bind Json.(member "kind" j) Json.to_str in
  let* kind = kind_of_string kind in
  let* name = Option.bind Json.(member "name" j) Json.to_str in
  let* hash = Option.bind Json.(member "hash" j) Json.to_str in
  let* features = Option.bind Json.(member "features" j) Json.to_str_list in
  let* order = Option.bind Json.(member "order" j) Json.to_str_list in
  let* findings = Option.bind Json.(member "findings" j) Json.to_list in
  let findings' = List.filter_map finding_of_json findings in
  if List.length findings' <> List.length findings then None
  else
    let* certified = Option.bind Json.(member "certified" j) Json.to_bool in
    let* cert_failures = Option.bind Json.(member "cert_failures" j) Json.to_int in
    Some { kind; name; hash; features; order; findings = findings'; certified; cert_failures }

let header_json ~inputs_hash =
  Json.Obj [ ("llhsc-journal", Json.Int version); ("inputs", Json.Str inputs_hash) ]

let header_of_json j =
  match Option.bind Json.(member "llhsc-journal" j) Json.to_int with
  | Some v when v = version -> Option.bind (Json.member "inputs" j) Json.to_str
  | _ -> None

(* A degradation marker is appended (best-effort, no durability claim)
   when a journal write or fsync fails mid-run: the run carried on
   checking but stopped journaling, so the file must never be trusted by
   [--resume] again.  [compact] is the explicit operator path that drops
   the marker. *)
let degraded_json reason = Json.Obj [ ("llhsc-degraded", Json.Str reason) ]
let degraded_of_json j = Option.bind (Json.member "llhsc-degraded" j) Json.to_str

let reason_of_exn = function
  | Unix.Unix_error (e, op, _) -> Printf.sprintf "%s: %s" op (Unix.error_message e)
  | Sys_error m -> m
  | e -> Printexc.to_string e

(* --- fault-injection kill hooks -------------------------------------------- *)

(* The fault harness simulates a crash at a seeded point by having the
   journal SIGKILL its own process: either right after the n-th record
   lands (clean cut between lines) or halfway through writing it (torn
   final line, which [load] must skip). *)
let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

let env_int name =
  match Sys.getenv_opt name with None -> None | Some v -> int_of_string_opt v

(* --- line checksums -------------------------------------------------------- *)

(* A record line is "<json>\t<crc32 of json, 8 lowercase hex digits>".
   [Json.to_string] escapes control characters, so a raw tab can never
   appear inside the JSON itself and the last tab splits unambiguously.
   The checksum catches corrupt-but-still-parseable lines (bit rot, a
   partial overwrite that happens to stay valid JSON) that the parse
   failure heuristic cannot; lines without a tab are accepted as the
   older checksum-less format. *)
let checksummed line = Printf.sprintf "%s\t%08x" line (Util.crc32 line)

(* [Some body] when the line is an old-format line or a checksummed line
   whose CRC verifies; [None] when the checksum is torn or wrong. *)
let verify_line line =
  match String.rindex_opt line '\t' with
  | None -> Some line (* pre-checksum journal *)
  | Some t ->
    let body = String.sub line 0 t in
    let crc = String.sub line (t + 1) (String.length line - t - 1) in
    if
      String.length crc = 8
      && String.for_all
           (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
           crc
      && int_of_string_opt ("0x" ^ crc) = Some (Util.crc32 body)
    then Some body
    else None

(* --- sink ------------------------------------------------------------------ *)

type sink = { oc : out_channel; mutable written : int; mutable degraded : string option }

(* fsync failure PROPAGATES ([Durable.sync]): a record must never be
   reported durable when its fsync failed.  [record] catches the failure
   and degrades the sink instead of crashing the check. *)
let sync oc = Durable.sync oc

(* Fail-operational: remember why journaling stopped, leave a marker so
   [load] refuses the file, and let the run carry on unjournaled.  The
   marker write is best-effort over the raw channel (the disk is already
   failing; the leading newline terminates any torn line the failed
   write left behind). *)
let degrade sink reason =
  sink.degraded <- Some reason;
  try
    output_char sink.oc '\n';
    output_string sink.oc (checksummed (Json.to_string (degraded_json reason)));
    output_char sink.oc '\n';
    flush sink.oc
  with Sys_error _ -> ()

let degradation sink = sink.degraded

let open_ ~path ~inputs_hash =
  let exists = Sys.file_exists path in
  let fresh =
    (not exists)
    || (try (Util.retry_eintr (fun () -> Unix.stat path)).Unix.st_size = 0
        with Unix.Unix_error _ -> true)
  in
  let oc = Durable.open_for_append path in
  let sink = { oc; written = 0; degraded = None } in
  if fresh then begin
    try
      Durable.out_string oc (Json.to_string (header_json ~inputs_hash) ^ "\n");
      sync oc
    with (Unix.Unix_error _ | Sys_error _) as e -> degrade sink (reason_of_exn e)
  end;
  sink

let record sink entry =
  if sink.degraded <> None then () (* fail-operational: journaling is off *)
  else begin
    let line = checksummed (Json.to_string (entry_to_json entry)) in
    sink.written <- sink.written + 1;
    (match env_int "LLHSC_FAULT_KILL_MID_RECORD" with
     | Some n when n = sink.written ->
       (* Torn write: half the record, no newline, then die. *)
       output_string sink.oc (String.sub line 0 (String.length line / 2));
       flush sink.oc;
       (try sync sink.oc with Unix.Unix_error _ | Sys_error _ -> ());
       kill_self ()
     | _ -> ());
    (match
       Durable.out_string sink.oc (line ^ "\n");
       sync sink.oc
     with
     | () -> ()
     | exception ((Unix.Unix_error _ | Sys_error _) as e) ->
       degrade sink (reason_of_exn e));
    if sink.degraded = None then begin
      (match env_int "LLHSC_FAULT_KILL_AFTER_RECORDS" with
       | Some n when n = sink.written -> kill_self ()
       | _ -> ());
      (* Unlike the SIGKILL hooks above, this one is catchable: it
         exercises the CLI's graceful-interrupt path (close the journal,
         exit 128+15) rather than simulating a crash. *)
      match env_int "LLHSC_FAULT_TERM_AFTER_RECORDS" with
      | Some n when n = sink.written -> Unix.kill (Unix.getpid ()) Sys.sigterm
      | _ -> ()
    end
  end

(* After a degradation the channel may hold the tail of a failed write
   whose flush would raise again; nothing durable is lost by dropping it. *)
let close sink =
  match sink.degraded with
  | Some _ -> close_out_noerr sink.oc
  | None -> close_out sink.oc

(* --- load ------------------------------------------------------------------ *)

let read_lines path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        Some (List.rev acc)
    in
    go []

(* Split a journal into (header verdict, record lines).  [None] when the
   file is missing or unreadable. *)
let scan path =
  match read_lines path with
  | None -> None
  | Some [] -> Some (`Missing, [])
  | Some (header :: rest) ->
    let verdict =
      match Json.parse header with
      | Error _ -> `Bad
      | Ok j -> (
        match header_of_json j with Some ih -> `Ok ih | None -> `Bad)
    in
    Some (verdict, rest)

(* Last record wins per (kind, name): a resumed run appends fresher
   verdicts rather than rewriting the file.  Also reports whether a
   degradation marker was seen anywhere in the record stream. *)
let entries_of_lines rest =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  let degraded = ref None in
  List.iter
    (fun line ->
      match verify_line line with
      | None -> () (* checksum mismatch: corrupt line, skip *)
      | Some body -> (
        match Json.parse body with
        | Error _ -> () (* torn final record, or garbage: skip *)
        | Ok j -> (
          match degraded_of_json j with
          | Some r -> degraded := Some r
          | None -> (
            match entry_of_json j with
            | None -> ()
            | Some e ->
              let key = (e.kind, e.name) in
              if not (Hashtbl.mem tbl key) then order := key :: !order;
              Hashtbl.replace tbl key e))))
    rest;
  (List.rev_map (fun key -> Hashtbl.find tbl key) !order, !degraded)

let load ~path ~inputs_hash =
  match scan path with
  | None | Some (`Missing, _) | Some (`Bad, _) -> []
  | Some (`Ok ih, _) when ih <> inputs_hash -> []
  | Some (`Ok _, rest) ->
    let entries, degraded = entries_of_lines rest in
    (* A journal whose run recorded a degradation stopped being complete
       at an unknowable point; trusting it could silently skip re-checks. *)
    if degraded <> None then [] else entries

let find entries kind name =
  List.find_opt (fun e -> e.kind = kind && e.name = name) entries

(* --- fsck / compact -------------------------------------------------------- *)

type fsck_report = {
  header : [ `Ok of string | `Bad | `Missing ];
  records : int;
  entries : int;
  legacy : int;
  torn : int;
  invalid : int;
  degraded_reason : string option;
}

let fsck_issues r = r.torn > 0 || r.invalid > 0 || r.degraded_reason <> None

let fsck ~path =
  match scan path with
  | None -> None
  | Some (header, rest) ->
    let records = ref 0 in
    let legacy = ref 0 in
    let torn = ref 0 in
    let invalid = ref 0 in
    let degraded = ref None in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun line ->
        if String.trim line = "" then () (* separator left by a degradation *)
        else
          match verify_line line with
          | None -> incr torn
          | Some body -> (
            match Json.parse body with
            | Error _ -> incr invalid
            | Ok j -> (
              match degraded_of_json j with
              | Some r -> degraded := Some r
              | None -> (
                match entry_of_json j with
                | None -> incr invalid
                | Some e ->
                  incr records;
                  if not (String.contains line '\t') then incr legacy;
                  Hashtbl.replace tbl (e.kind, e.name) ()))))
      rest;
    Some
      { header; records = !records; entries = Hashtbl.length tbl;
        legacy = !legacy; torn = !torn; invalid = !invalid;
        degraded_reason = !degraded }

let compact ~path =
  match scan path with
  | None -> Error (path ^ ": cannot read journal")
  | Some (`Missing, _) -> Error (path ^ ": empty journal, nothing to compact")
  | Some (`Bad, _) -> Error (path ^ ": unrecognised journal header")
  | Some (`Ok ih, rest) ->
    let entries, _degraded = entries_of_lines rest in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Json.to_string (header_json ~inputs_hash:ih));
    Buffer.add_char buf '\n';
    List.iter
      (fun e ->
        Buffer.add_string buf (checksummed (Json.to_string (entry_to_json e)));
        Buffer.add_char buf '\n')
      entries;
    (* Atomic rewrite: a crash mid-compact leaves the old journal intact.
       Dropping the degradation marker here is deliberate — compacting is
       the explicit operator act that re-blesses the surviving entries. *)
    Durable.write_file ~path (Buffer.contents buf);
    Ok (List.length rest, List.length entries)
