(* Small string helpers shared by the llhsc modules. *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* A stray signal (SIGCHLD from a reaped worker, a profiler's SIGPROF, ...)
   interrupts slow syscalls with EINTR; every [Unix.read]/[select]/[waitpid]
   /[fsync] in the pool and the journal must retry instead of surfacing a
   spurious error. *)
let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

(* A write to a half-closed pipe or socket raises SIGPIPE, whose default
   disposition kills the process.  Every socket-writing path (the shard
   supervisor, the serve daemon, the fleet dispatcher and workers)
   ignores it for its lifetime so a peer disconnect mid-write surfaces
   as EPIPE — a per-connection error — instead of process death. *)
let ignore_sigpipe () =
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  fun () -> ignore (Sys.signal Sys.sigpipe prev : Sys.signal_behavior)

(* --- CRC32 ------------------------------------------------------------------ *)

(* Standard table-driven CRC-32 (IEEE 802.3, reflected polynomial
   0xEDB88320) — the checksum of zlib/PNG/ethernet.  Used for per-line
   journal checksums and for fleet frame integrity; it catches the
   corrupt-but-still-parseable lines a JSON parse failure cannot. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc s off len =
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_update 0 s 0 (String.length s)
