(* Small string helpers shared by the llhsc modules. *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* A stray signal (SIGCHLD from a reaped worker, a profiler's SIGPROF, ...)
   interrupts slow syscalls with EINTR; every [Unix.read]/[select]/[waitpid]
   /[fsync] in the pool and the journal must retry instead of surfacing a
   spurious error. *)
let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f
