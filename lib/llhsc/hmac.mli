(** Dependency-free SHA-256 and HMAC-SHA256 for the fleet's
    authenticated transport.

    Scope (see DESIGN.md "fleet trust"): message {e authentication}
    under a pre-shared secret — proving a peer knows the secret and that
    frames were not forged or tampered in flight.  Not confidentiality
    (frames travel in clear), not replay protection beyond the
    handshake's per-connection nonce window and per-frame sequence
    numbers. *)

(** Raw 32-byte SHA-256 digest (FIPS 180-4). *)
val sha256 : string -> string

(** Raw 32-byte HMAC-SHA256 (RFC 2104). *)
val hmac : key:string -> string -> string

(** Lowercase hex of a raw digest. *)
val to_hex : string -> string

(** Constant-time equality: timing never reveals the position of the
    first differing byte.  Use for every MAC comparison. *)
val equal : string -> string -> bool

(** 32 hex chars of fresh nonce (16 bytes from /dev/urandom, with a
    time/pid digest fallback). *)
val nonce : unit -> string
