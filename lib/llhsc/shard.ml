(* Worker pool for the sharded check phase.  See the .mli for the
   contract; the key invariants live here:

   - one pipe per worker, written only by that worker, drained fully by
     the parent before the next pipe (no interleaving, no deadlock: the
     parent is the only reader and children never read);
   - one complete JSON line per task result, flushed as soon as the task
     finishes, so a crashing worker loses only its in-flight task(s);
   - children exit through [Unix._exit], never [exit]: the parent's
     [at_exit] handlers and buffered channels must not run or flush a
     second time in the child. *)

type result = {
  product : string;
  findings : Report.finding list;
  errors : Diag.t list;
  queries : int;
  certs : Smt.Solver.cert list;
  cert_failures : string list;
  retried : Smt.Solver.retry_entry list;
}

(* --- renumbering ----------------------------------------------------------- *)

(* Certification failure messages are rendered by the solver as
   "query %d: ...": rewrite the local index into the run-wide one. *)
let renumber_failure ~offset s =
  let prefix = "query " in
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    match String.index_from_opt s plen ':' with
    | Some i -> (
      match int_of_string_opt (String.sub s plen (i - plen)) with
      | Some q ->
        Printf.sprintf "query %d%s" (q + offset)
          (String.sub s i (String.length s - i))
      | None -> s)
    | None -> s
  else s

let renumber ~offset r =
  if offset = 0 then r
  else
    {
      r with
      certs =
        List.map
          (fun (c : Smt.Solver.cert) -> { c with query = c.query + offset })
          r.certs;
      cert_failures = List.map (renumber_failure ~offset) r.cert_failures;
      retried =
        List.map
          (fun (e : Smt.Solver.retry_entry) ->
            { e with rquery = e.rquery + offset })
          r.retried;
    }

(* --- JSON wire format ------------------------------------------------------- *)

(* [Json.t] has no float constructor; times cross the pipe as hexadecimal
   float literals ("%h"), which round-trip exactly. *)
let float_to_json t = Json.Str (Printf.sprintf "%h" t)
let float_of_json j = Option.bind (Json.to_str j) float_of_string_opt

let diag_severity_to_string : Diag.severity -> string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let diag_severity_of_string = function
  | "error" -> Some Diag.Error
  | "warning" -> Some Diag.Warning
  | "info" -> Some Diag.Info
  | _ -> None

let diag_to_json (d : Diag.t) =
  Json.Obj
    [
      ("severity", Json.Str (diag_severity_to_string d.severity));
      ("code", Json.Str d.code);
      ("message", Json.Str d.message);
      ( "loc",
        match d.loc with
        | None -> Json.Null
        | Some loc ->
          Json.Obj
            [
              ("file", Json.Str loc.Devicetree.Loc.file);
              ("line", Json.Int loc.Devicetree.Loc.line);
              ("col", Json.Int loc.Devicetree.Loc.col);
            ] );
    ]

let ( let* ) = Option.bind

let diag_of_json j =
  let* severity = Option.bind (Json.member "severity" j) Json.to_str in
  let* severity = diag_severity_of_string severity in
  let* code = Option.bind (Json.member "code" j) Json.to_str in
  let* message = Option.bind (Json.member "message" j) Json.to_str in
  let* loc =
    match Json.member "loc" j with
    | Some Json.Null | None -> Some None
    | Some loc ->
      let* file = Option.bind (Json.member "file" loc) Json.to_str in
      let* line = Option.bind (Json.member "line" loc) Json.to_int in
      let* col = Option.bind (Json.member "col" loc) Json.to_int in
      Some (Some (Devicetree.Loc.make ~file ~line ~col))
  in
  Some { Diag.severity; code; message; loc }

let verdict_to_string = function `Sat -> "sat" | `Unsat -> "unsat"

let verdict_of_string = function
  | "sat" -> Some `Sat
  | "unsat" -> Some `Unsat
  | _ -> None

let cert_to_json (c : Smt.Solver.cert) =
  Json.Obj
    [
      ("query", Json.Int c.query);
      ("verdict", Json.Str (verdict_to_string c.verdict));
      ("steps", Json.Int c.steps);
      ("time", float_to_json c.time);
      ("ok", Json.Bool c.ok);
    ]

let cert_of_json j =
  let* query = Option.bind (Json.member "query" j) Json.to_int in
  let* verdict = Option.bind (Json.member "verdict" j) Json.to_str in
  let* verdict = verdict_of_string verdict in
  let* steps = Option.bind (Json.member "steps" j) Json.to_int in
  let* time = Option.bind (Json.member "time" j) float_of_json in
  let* ok = Option.bind (Json.member "ok" j) Json.to_bool in
  Some { Smt.Solver.query; verdict; steps; time; ok }

let polarity_to_string : Sat.Solver.polarity_mode -> string = function
  | Phase_saved -> "saved"
  | Phase_false -> "false"
  | Phase_true -> "true"
  | Phase_inverted -> "inverted"
  | Phase_random -> "random"

let polarity_of_string = function
  | "saved" -> Some Sat.Solver.Phase_saved
  | "false" -> Some Sat.Solver.Phase_false
  | "true" -> Some Sat.Solver.Phase_true
  | "inverted" -> Some Sat.Solver.Phase_inverted
  | "random" -> Some Sat.Solver.Phase_random
  | _ -> None

let attempt_to_json (a : Smt.Solver.attempt) =
  Json.Obj
    [
      ("attempt", Json.Int a.attempt);
      ("scale", Json.Int a.scale);
      ("seed", match a.seed with None -> Json.Null | Some s -> Json.Int s);
      ("polarity", Json.Str (polarity_to_string a.polarity));
      ( "result",
        Json.Str
          (match a.result with
           | `Sat -> "sat"
           | `Unsat -> "unsat"
           | `Unknown -> "unknown") );
      ("conflicts", Json.Int a.conflicts);
      ("time", float_to_json a.time);
    ]

let attempt_of_json j =
  let* attempt = Option.bind (Json.member "attempt" j) Json.to_int in
  let* scale = Option.bind (Json.member "scale" j) Json.to_int in
  let* seed =
    match Json.member "seed" j with
    | Some Json.Null | None -> Some None
    | Some (Json.Int s) -> Some (Some s)
    | Some _ -> None
  in
  let* polarity = Option.bind (Json.member "polarity" j) Json.to_str in
  let* polarity = polarity_of_string polarity in
  let* result = Option.bind (Json.member "result" j) Json.to_str in
  let* result =
    match result with
    | "sat" -> Some `Sat
    | "unsat" -> Some `Unsat
    | "unknown" -> Some `Unknown
    | _ -> None
  in
  let* conflicts = Option.bind (Json.member "conflicts" j) Json.to_int in
  let* time = Option.bind (Json.member "time" j) float_of_json in
  Some { Smt.Solver.attempt; scale; seed; polarity; result; conflicts; time }

let retry_entry_to_json (e : Smt.Solver.retry_entry) =
  Json.Obj
    [
      ("rquery", Json.Int e.rquery);
      ("attempts", Json.List (List.map attempt_to_json e.attempts));
      ("recovered", Json.Bool e.recovered);
    ]

let retry_entry_of_json j =
  let* rquery = Option.bind (Json.member "rquery" j) Json.to_int in
  let* attempts = Option.bind (Json.member "attempts" j) Json.to_list in
  let attempts' = List.filter_map attempt_of_json attempts in
  if List.length attempts' <> List.length attempts then None
  else
    let* recovered = Option.bind (Json.member "recovered" j) Json.to_bool in
    Some { Smt.Solver.rquery; attempts = attempts'; recovered }

let all_or_none of_json items =
  let parsed = List.filter_map of_json items in
  if List.length parsed <> List.length items then None else Some parsed

let result_to_json r =
  Json.Obj
    [
      ("product", Json.Str r.product);
      ("findings", Json.List (List.map Journal.finding_to_json r.findings));
      ("errors", Json.List (List.map diag_to_json r.errors));
      ("queries", Json.Int r.queries);
      ("certs", Json.List (List.map cert_to_json r.certs));
      ( "cert_failures",
        Json.List (List.map (fun s -> Json.Str s) r.cert_failures) );
      ("retried", Json.List (List.map retry_entry_to_json r.retried));
    ]

let result_of_json j =
  let* product = Option.bind (Json.member "product" j) Json.to_str in
  let* findings = Option.bind (Json.member "findings" j) Json.to_list in
  let* findings = all_or_none Journal.finding_of_json findings in
  let* errors = Option.bind (Json.member "errors" j) Json.to_list in
  let* errors = all_or_none diag_of_json errors in
  let* queries = Option.bind (Json.member "queries" j) Json.to_int in
  let* certs = Option.bind (Json.member "certs" j) Json.to_list in
  let* certs = all_or_none cert_of_json certs in
  let* cert_failures =
    Option.bind (Json.member "cert_failures" j) Json.to_str_list
  in
  let* retried = Option.bind (Json.member "retried" j) Json.to_list in
  let* retried = all_or_none retry_entry_of_json retried in
  Some { product; findings; errors; queries; certs; cert_failures; retried }

(* --- worker pool ------------------------------------------------------------ *)

let kill_worker_at () =
  match Sys.getenv_opt "LLHSC_FAULT_KILL_WORKER" with
  | None -> None
  | Some v -> int_of_string_opt v

let run_tasks ~jobs (tasks : (unit -> result) array) =
  let n = Array.length tasks in
  let results = Array.make n None in
  let jobs = min jobs n in
  if jobs <= 1 then begin
    Array.iteri (fun i task -> results.(i) <- Some (task ())) tasks;
    results
  end
  else begin
    (* Anything buffered before the fork would be flushed once per child
       on top of once in the parent. *)
    flush stdout;
    flush stderr;
    Format.pp_print_flush Format.std_formatter ();
    Format.pp_print_flush Format.err_formatter ();
    let kill_at = kill_worker_at () in
    let workers =
      Array.init jobs (fun w ->
          let rfd, wfd = Unix.pipe () in
          match Unix.fork () with
          | 0 ->
            Unix.close rfd;
            let oc = Unix.out_channel_of_descr wfd in
            (try
               for i = 0 to n - 1 do
                 if i mod jobs = w then begin
                   (match kill_at with
                    | Some k when k = i ->
                      Unix.kill (Unix.getpid ()) Sys.sigkill
                    | _ -> ());
                   let res = tasks.(i) () in
                   output_string oc
                     (Json.to_string
                        (Json.Obj
                           [
                             ("task", Json.Int i);
                             ("result", result_to_json res);
                           ]));
                   output_char oc '\n';
                   flush oc
                 end
               done;
               flush oc;
               Unix._exit 0
             with e ->
               (* Don't unwind into a second copy of the parent: report and
                  die; the parent degrades the missing results. *)
               Printf.eprintf "llhsc worker %d: %s\n%!" w
                 (Printexc.to_string e);
               Unix._exit 125)
          | pid ->
            Unix.close wfd;
            (pid, rfd))
    in
    Array.iter
      (fun (pid, rfd) ->
        let ic = Unix.in_channel_of_descr rfd in
        (try
           while true do
             let line = input_line ic in
             match Json.parse line with
             | Ok j -> (
               match (Json.member "task" j, Json.member "result" j) with
               | Some (Json.Int i), Some rj when i >= 0 && i < n ->
                 results.(i) <- result_of_json rj
               | _ -> ())
             | Error _ -> () (* torn final line of a killed worker *)
           done
         with End_of_file -> ());
        close_in ic;
        ignore (Unix.waitpid [] pid))
      workers;
    results
  end
