(* Supervised worker pool for the sharded check phase.  See the .mli for
   the contract; the key invariants live here:

   - dynamic dispatch: the parent writes one task index per line down a
     worker's command pipe and the worker answers with a heartbeat line
     (lease start) followed by one complete JSON result line, flushed
     immediately, so a crashing worker loses only its in-flight task;
   - the parent multiplexes every result pipe through a non-blocking
     [select] drain, tracks a per-worker lease (task + start time),
     SIGKILLs leases that outlive the task deadline, reaps and respawns
     dead workers (bounded, exponential backoff), and *reassigns* a dead
     worker's task instead of degrading it — a task that has crashed two
     workers is quarantined as a poison task and retried once in-process;
   - every slow syscall is wrapped in an EINTR retry ([Util.retry_eintr]):
     a stray signal must not abort the drain;
   - results are keyed by task index and each task runs on a fresh
     solver, so no matter which worker (or the parent) finally runs a
     task, its result — and with it the merged report — is byte-identical
     across crash/reassign schedules;
   - children exit through [Unix._exit], never [exit]: the parent's
     [at_exit] handlers and buffered channels must not run or flush a
     second time in the child. *)

type result = {
  product : string;
  findings : Report.finding list;
  errors : Diag.t list;
  queries : int;
  certs : Smt.Solver.cert list;
  cert_failures : string list;
  retried : Smt.Solver.retry_entry list;
}

type task = { owner : string; run : unit -> result }

(* --- renumbering ----------------------------------------------------------- *)

(* Certification failure messages are rendered by the solver as
   "query %d: ...": rewrite the local index into the run-wide one. *)
let renumber_failure ~offset s =
  let prefix = "query " in
  let plen = String.length prefix in
  if String.length s > plen && String.sub s 0 plen = prefix then
    match String.index_from_opt s plen ':' with
    | Some i -> (
      match int_of_string_opt (String.sub s plen (i - plen)) with
      | Some q ->
        Printf.sprintf "query %d%s" (q + offset)
          (String.sub s i (String.length s - i))
      | None -> s)
    | None -> s
  else s

let renumber ~offset r =
  if offset = 0 then r
  else
    {
      r with
      certs =
        List.map
          (fun (c : Smt.Solver.cert) -> { c with query = c.query + offset })
          r.certs;
      cert_failures = List.map (renumber_failure ~offset) r.cert_failures;
      retried =
        List.map
          (fun (e : Smt.Solver.retry_entry) ->
            { e with rquery = e.rquery + offset })
          r.retried;
    }

(* --- JSON wire format ------------------------------------------------------- *)

(* [Json.t] has no float constructor; times cross the pipe as hexadecimal
   float literals ("%h"), which round-trip exactly. *)
let float_to_json t = Json.Str (Printf.sprintf "%h" t)
let float_of_json j = Option.bind (Json.to_str j) float_of_string_opt

let diag_severity_to_string : Diag.severity -> string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let diag_severity_of_string = function
  | "error" -> Some Diag.Error
  | "warning" -> Some Diag.Warning
  | "info" -> Some Diag.Info
  | _ -> None

let diag_to_json (d : Diag.t) =
  Json.Obj
    [
      ("severity", Json.Str (diag_severity_to_string d.severity));
      ("code", Json.Str d.code);
      ("message", Json.Str d.message);
      ( "loc",
        match d.loc with
        | None -> Json.Null
        | Some loc ->
          Json.Obj
            [
              ("file", Json.Str loc.Devicetree.Loc.file);
              ("line", Json.Int loc.Devicetree.Loc.line);
              ("col", Json.Int loc.Devicetree.Loc.col);
            ] );
    ]

let ( let* ) = Option.bind

let diag_of_json j =
  let* severity = Option.bind (Json.member "severity" j) Json.to_str in
  let* severity = diag_severity_of_string severity in
  let* code = Option.bind (Json.member "code" j) Json.to_str in
  let* message = Option.bind (Json.member "message" j) Json.to_str in
  let* loc =
    match Json.member "loc" j with
    | Some Json.Null | None -> Some None
    | Some loc ->
      let* file = Option.bind (Json.member "file" loc) Json.to_str in
      let* line = Option.bind (Json.member "line" loc) Json.to_int in
      let* col = Option.bind (Json.member "col" loc) Json.to_int in
      Some (Some (Devicetree.Loc.make ~file ~line ~col))
  in
  Some { Diag.severity; code; message; loc }

let verdict_to_string = function `Sat -> "sat" | `Unsat -> "unsat"

let verdict_of_string = function
  | "sat" -> Some `Sat
  | "unsat" -> Some `Unsat
  | _ -> None

let cert_to_json (c : Smt.Solver.cert) =
  Json.Obj
    [
      ("query", Json.Int c.query);
      ("verdict", Json.Str (verdict_to_string c.verdict));
      ("steps", Json.Int c.steps);
      ("time", float_to_json c.time);
      ("ok", Json.Bool c.ok);
    ]

let cert_of_json j =
  let* query = Option.bind (Json.member "query" j) Json.to_int in
  let* verdict = Option.bind (Json.member "verdict" j) Json.to_str in
  let* verdict = verdict_of_string verdict in
  let* steps = Option.bind (Json.member "steps" j) Json.to_int in
  let* time = Option.bind (Json.member "time" j) float_of_json in
  let* ok = Option.bind (Json.member "ok" j) Json.to_bool in
  Some { Smt.Solver.query; verdict; steps; time; ok }

let polarity_to_string : Sat.Solver.polarity_mode -> string = function
  | Phase_saved -> "saved"
  | Phase_false -> "false"
  | Phase_true -> "true"
  | Phase_inverted -> "inverted"
  | Phase_random -> "random"

let polarity_of_string = function
  | "saved" -> Some Sat.Solver.Phase_saved
  | "false" -> Some Sat.Solver.Phase_false
  | "true" -> Some Sat.Solver.Phase_true
  | "inverted" -> Some Sat.Solver.Phase_inverted
  | "random" -> Some Sat.Solver.Phase_random
  | _ -> None

let attempt_to_json (a : Smt.Solver.attempt) =
  Json.Obj
    [
      ("attempt", Json.Int a.attempt);
      ("scale", Json.Int a.scale);
      ("seed", match a.seed with None -> Json.Null | Some s -> Json.Int s);
      ("polarity", Json.Str (polarity_to_string a.polarity));
      ( "result",
        Json.Str
          (match a.result with
           | `Sat -> "sat"
           | `Unsat -> "unsat"
           | `Unknown -> "unknown") );
      ("conflicts", Json.Int a.conflicts);
      ("time", float_to_json a.time);
    ]

let attempt_of_json j =
  let* attempt = Option.bind (Json.member "attempt" j) Json.to_int in
  let* scale = Option.bind (Json.member "scale" j) Json.to_int in
  let* seed =
    match Json.member "seed" j with
    | Some Json.Null | None -> Some None
    | Some (Json.Int s) -> Some (Some s)
    | Some _ -> None
  in
  let* polarity = Option.bind (Json.member "polarity" j) Json.to_str in
  let* polarity = polarity_of_string polarity in
  let* result = Option.bind (Json.member "result" j) Json.to_str in
  let* result =
    match result with
    | "sat" -> Some `Sat
    | "unsat" -> Some `Unsat
    | "unknown" -> Some `Unknown
    | _ -> None
  in
  let* conflicts = Option.bind (Json.member "conflicts" j) Json.to_int in
  let* time = Option.bind (Json.member "time" j) float_of_json in
  Some { Smt.Solver.attempt; scale; seed; polarity; result; conflicts; time }

let retry_entry_to_json (e : Smt.Solver.retry_entry) =
  Json.Obj
    [
      ("rquery", Json.Int e.rquery);
      ("attempts", Json.List (List.map attempt_to_json e.attempts));
      ("recovered", Json.Bool e.recovered);
    ]

let retry_entry_of_json j =
  let* rquery = Option.bind (Json.member "rquery" j) Json.to_int in
  let* attempts = Option.bind (Json.member "attempts" j) Json.to_list in
  let attempts' = List.filter_map attempt_of_json attempts in
  if List.length attempts' <> List.length attempts then None
  else
    let* recovered = Option.bind (Json.member "recovered" j) Json.to_bool in
    Some { Smt.Solver.rquery; attempts = attempts'; recovered }

let all_or_none of_json items =
  let parsed = List.filter_map of_json items in
  if List.length parsed <> List.length items then None else Some parsed

let result_to_json r =
  Json.Obj
    [
      ("product", Json.Str r.product);
      ("findings", Json.List (List.map Journal.finding_to_json r.findings));
      ("errors", Json.List (List.map diag_to_json r.errors));
      ("queries", Json.Int r.queries);
      ("certs", Json.List (List.map cert_to_json r.certs));
      ( "cert_failures",
        Json.List (List.map (fun s -> Json.Str s) r.cert_failures) );
      ("retried", Json.List (List.map retry_entry_to_json r.retried));
    ]

let result_of_json j =
  let* product = Option.bind (Json.member "product" j) Json.to_str in
  let* findings = Option.bind (Json.member "findings" j) Json.to_list in
  let* findings = all_or_none Journal.finding_of_json findings in
  let* errors = Option.bind (Json.member "errors" j) Json.to_list in
  let* errors = all_or_none diag_of_json errors in
  let* queries = Option.bind (Json.member "queries" j) Json.to_int in
  let* certs = Option.bind (Json.member "certs" j) Json.to_list in
  let* certs = all_or_none cert_of_json certs in
  let* cert_failures =
    Option.bind (Json.member "cert_failures" j) Json.to_str_list
  in
  let* retried = Option.bind (Json.member "retried" j) Json.to_list in
  let* retried = all_or_none retry_entry_of_json retried in
  Some { product; findings; errors; queries; certs; cert_failures; retried }

(* --- resource guards -------------------------------------------------------- *)

(* OCaml's Unix library exposes getrlimit through neither stdlib nor
   unix; two tiny C stubs (shard_stubs.c) cover the pool's needs. *)
external set_rlimit : int -> int -> int -> bool = "llhsc_set_rlimit"
external online_cpus_stub : unit -> int = "llhsc_online_cpus"

let online_cpus () = max 1 (online_cpus_stub ())
let rlimit_as = 0
let rlimit_cpu = 1

(* Workers install the guards after the fork, so a tripped limit takes
   down (or signals) only the one child.  RLIMIT_AS makes allocation
   fail, which OCaml surfaces as Out_of_memory; RLIMIT_CPU delivers
   SIGXCPU, which the handler turns into Resource_limit.  Both are owned
   by Diag.of_exn, so the task degrades to error[RESOURCE]. *)
let install_guards ~mem_limit ~cpu_limit =
  (match mem_limit with
   | Some mb when mb > 0 ->
     let bytes = mb * 1024 * 1024 in
     ignore (set_rlimit rlimit_as bytes bytes : bool)
   | _ -> ());
  match cpu_limit with
  | Some secs when secs > 0 ->
    Sys.set_signal Sys.sigxcpu
      (Sys.Signal_handle
         (fun _ -> raise (Diag.Resource_limit "cpu time limit exceeded")));
    (* Hard limit a few seconds above soft: if the handler cannot fire
       (e.g. a blocking C call), SIGKILL ends the worker and the
       supervisor reassigns the task. *)
    ignore (set_rlimit rlimit_cpu secs (secs + 5) : bool)
  | _ -> ()

(* --- fault-injection hooks (read only in worker children) ------------------- *)

let env_int name = Option.bind (Sys.getenv_opt name) int_of_string_opt

(* Deliberately exceed RLIMIT_AS: large untouched allocations raise the
   address-space watermark without paging in real memory, so the guard
   trips long before the machine feels it.  Only ever called when a
   memory limit is installed. *)
let gobble_memory () =
  let hoard = ref [] in
  for _ = 1 to 1024 do
    hoard := Bytes.create (128 * 1024 * 1024) :: !hoard
  done;
  ignore (Sys.opaque_identity !hoard)

(* --- worker child ------------------------------------------------------------ *)

let degraded_result ~owner (d : Diag.t) =
  {
    product = owner;
    findings = [];
    errors =
      [ { d with Diag.message = Printf.sprintf "product %s: %s" owner d.Diag.message } ];
    queries = 0;
    certs = [];
    cert_failures = [];
    retried = [];
  }

let run_task_guarded (t : task) =
  try t.run ()
  with e -> (
    match Diag.of_exn e with
    | Some d -> degraded_result ~owner:t.owner d
    | None -> raise e)

(* The worker serves task indices read one per line from the command
   pipe.  For each it emits a heartbeat line ({"hb": i}) before running
   the task — the supervisor uses it to start/refresh the lease clock —
   then the result line.  EOF on the command pipe is the retirement
   signal. *)
let worker_main ~(tasks : task array) ~mem_limit ~cpu_limit cmd_rfd res_wfd =
  install_guards ~mem_limit ~cpu_limit;
  let ic = Unix.in_channel_of_descr cmd_rfd in
  let oc = Unix.out_channel_of_descr res_wfd in
  let kill_at = env_int "LLHSC_FAULT_KILL_WORKER" in
  let hang_at = env_int "LLHSC_FAULT_HANG_WORKER" in
  let oom_at = env_int "LLHSC_FAULT_OOM_WORKER" in
  let emit j =
    output_string oc (Json.to_string j);
    output_char oc '\n';
    flush oc
  in
  try
    let rec serve () =
      match input_line ic with
      | exception End_of_file -> Unix._exit 0
      | line ->
        let i =
          match int_of_string_opt (String.trim line) with
          | Some i when i >= 0 && i < Array.length tasks -> i
          | _ -> Unix._exit 124
        in
        (match kill_at with
         | Some k when k = i -> Unix.kill (Unix.getpid ()) Sys.sigkill
         | _ -> ());
        emit (Json.Obj [ ("hb", Json.Int i) ]);
        (match hang_at with
         | Some k when k = i ->
           (* Simulated livelock: heartbeats stop, the result never
              comes; only the supervisor's deadline can end this. *)
           while true do
             Unix.sleep 3600
           done
         | _ -> ());
        let t = tasks.(i) in
        (* The OOM hook runs inside the task guard: a tripped memory
           limit must degrade to error[RESOURCE] exactly like a genuine
           allocation failure inside the task. *)
        let t =
          match oom_at with
          | Some k when k = i && mem_limit <> None ->
            { t with run = (fun () -> gobble_memory (); t.run ()) }
          | _ -> t
        in
        let res = run_task_guarded t in
        emit (Json.Obj [ ("task", Json.Int i); ("result", result_to_json res) ]);
        serve ()
    in
    serve ()
  with e ->
    (* Don't unwind into a second copy of the parent: report and die;
       the supervisor reassigns the in-flight task. *)
    Printf.eprintf "llhsc worker: %s\n%!" (Printexc.to_string e);
    Unix._exit 125

(* --- supervisor -------------------------------------------------------------- *)

(* Task progress (pending queue, first-wins results, crash counts,
   quarantine) and lease clocks live in the transport-agnostic
   {!Supervise} core, shared with the socket fleet dispatcher; this
   record keeps only what is specific to the fork-pipe transport. *)
type worker = {
  pid : int;
  cmd_fd : Unix.file_descr;  (** parent writes task indices here *)
  res_fd : Unix.file_descr;  (** parent reads heartbeat/result lines here *)
  mutable acc : string;  (** partial line carried between drains *)
  leases : Supervise.Lease.t;  (** at most one in-flight task *)
}

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      go (off + Util.retry_eintr (fun () -> Unix.write fd b off (len - off)))
  in
  go 0

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Supervision notices go to stderr only and never into the report:
   *what* happened to the pool must not change *what the checker
   found*. *)
let notice fmt = Printf.eprintf ("llhsc: " ^^ fmt ^^ "\n%!")

let run_supervised ~jobs ~deadline ~max_respawns ~mem_limit ~cpu_limit
    (tasks : task array) =
  let n = Array.length tasks in
  let st : result Supervise.t = Supervise.create n in
  let results = Supervise.results st in
  let respawns = ref 0 in
  let workers = ref [] in
  (* A write to a worker that died between select rounds must surface as
     EPIPE, not kill the supervisor. *)
  let restore_sigpipe = Util.ignore_sigpipe () in
  let spawn () =
    (* Anything buffered before the fork would be flushed once per child
       on top of once in the parent. *)
    flush stdout;
    flush stderr;
    Format.pp_print_flush Format.std_formatter ();
    Format.pp_print_flush Format.err_formatter ();
    let cmd_r, cmd_w = Unix.pipe () in
    let res_r, res_w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
      Unix.close cmd_w;
      Unix.close res_r;
      (* Close inherited pipe ends of sibling workers: a sibling holding
         a dead worker's write end open would mask its EOF forever. *)
      List.iter
        (fun w ->
          close_quiet w.cmd_fd;
          close_quiet w.res_fd)
        !workers;
      worker_main ~tasks ~mem_limit ~cpu_limit cmd_r res_w
    | pid ->
      Unix.close cmd_r;
      Unix.close res_w;
      let w =
        { pid; cmd_fd = cmd_w; res_fd = res_r; acc = "";
          leases = Supervise.Lease.create () }
      in
      workers := !workers @ [ w ];
      w
  in
  let dispatch w =
    match Supervise.next st with
    | None -> ()
    | Some i -> (
      match write_all w.cmd_fd (string_of_int i ^ "\n") with
      | () -> Supervise.Lease.start w.leases i (Unix.gettimeofday ())
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
        (* Worker already dead: put the task back; the EOF on its result
           pipe triggers the reap/reassign path. *)
        Supervise.requeue st i)
  in
  let fill () =
    List.iter
      (fun w -> if Supervise.Lease.count w.leases = 0 then dispatch w)
      !workers
  in
  let reap w =
    close_quiet w.cmd_fd;
    close_quiet w.res_fd;
    (try ignore (Util.retry_eintr (fun () -> Unix.waitpid [] w.pid))
     with Unix.Unix_error _ -> ());
    workers := List.filter (fun w' -> w' != w) !workers
  in
  let handle_death w =
    reap w;
    List.iter
      (fun i ->
        match Supervise.record_crash st i with
        | `Resolved -> ()
        | `Quarantine k ->
          notice
            "task %d (product %s): crashed %d workers; quarantined as poison \
             task, will retry in-process"
            i tasks.(i).owner k
        | `Reassign ->
          notice "task %d (product %s): worker died before reporting; reassigning"
            i tasks.(i).owner)
      (Supervise.Lease.tasks w.leases);
    (* Restore lost capacity, but only while there is queued work and
       respawn budget left. *)
    if Supervise.has_pending st then
      if !respawns < max_respawns then begin
        incr respawns;
        let backoff = min 0.5 (0.02 *. (2. ** float_of_int (!respawns - 1))) in
        Unix.sleepf backoff;
        ignore (spawn () : worker)
      end
      else if !workers = [] then
        notice "worker respawn budget (%d) exhausted; finishing %d task(s) \
                in-process"
          max_respawns (Supervise.pending_count st)
  in
  let resolve w i r =
    ignore (Supervise.resolve st i r : [ `Fresh | `Duplicate ]);
    Supervise.Lease.finish w.leases i;
    dispatch w
  in
  let process_line w line =
    match Json.parse line with
    | Error _ -> () (* torn line of a worker killed mid-write *)
    | Ok j -> (
      match Json.member "hb" j with
      | Some (Json.Int i) ->
        (* Heartbeat: restart the lease clock for the in-flight task. *)
        Supervise.Lease.beat w.leases i (Unix.gettimeofday ())
      | _ -> (
        match (Json.member "task" j, Json.member "result" j) with
        | Some (Json.Int i), Some rj when i >= 0 && i < n -> (
          match result_of_json rj with
          | Some r -> resolve w i r
          | None -> ())
        | _ -> ()))
  in
  let buf = Bytes.create 65536 in
  let drain w =
    match
      Util.retry_eintr (fun () -> Unix.read w.res_fd buf 0 (Bytes.length buf))
    with
    | 0 -> handle_death w
    | k ->
      w.acc <- w.acc ^ Bytes.sub_string buf 0 k;
      let rec split () =
        match String.index_opt w.acc '\n' with
        | None -> ()
        | Some nl ->
          let line = String.sub w.acc 0 nl in
          w.acc <- String.sub w.acc (nl + 1) (String.length w.acc - nl - 1);
          process_line w line;
          split ()
      in
      split ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) ->
      handle_death w
  in
  let expire () =
    match deadline with
    | None -> ()
    | Some dl ->
      let now = Unix.gettimeofday () in
      List.iter
        (fun w ->
          List.iter
            (fun i ->
              notice
                "task %d (product %s): deadline of %.1fs expired; killing hung \
                 worker (pid %d)"
                i tasks.(i).owner dl w.pid;
              (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
              (* Death arrives as EOF on the result pipe; restart the clock
                 so the worker isn't re-killed every round meanwhile. *)
              Supervise.Lease.start w.leases i now)
            (Supervise.Lease.expired w.leases ~deadline:dl ~now))
        !workers
  in
  let select_timeout () =
    match deadline with
    | None -> -1.
    | Some dl ->
      let now = Unix.gettimeofday () in
      let next =
        List.fold_left
          (fun acc w ->
            match Supervise.Lease.next_expiry w.leases ~deadline:dl ~now with
            | Some dt -> min acc dt
            | None -> acc)
          infinity !workers
      in
      if next = infinity then -1. else Float.max 0.01 next
  in
  let supervise () =
    for _ = 1 to min jobs n do
      ignore (spawn () : worker)
    done;
    while Supervise.unfinished st && !workers <> [] do
      fill ();
      expire ();
      if Supervise.unfinished st && !workers <> [] then begin
        let fds = List.map (fun w -> w.res_fd) !workers in
        let readable, _, _ =
          Util.retry_eintr (fun () -> Unix.select fds [] [] (select_timeout ()))
        in
        List.iter
          (fun fd ->
            match List.find_opt (fun w -> w.res_fd = fd) !workers with
            | Some w -> drain w
            | None -> ())
          readable
      end
    done;
    (* Retire the pool: closing the command pipes makes idle workers exit;
       a worker still computing a redundant copy of an already-resolved
       task finishes, writes, sees EOF and exits — the drain below
       discards the duplicate bytes and reaps everyone. *)
    List.iter (fun w -> close_quiet w.cmd_fd) !workers;
    List.iter
      (fun w ->
        (try
           while
             Util.retry_eintr (fun () ->
                 Unix.read w.res_fd buf 0 (Bytes.length buf))
             > 0
           do
             ()
           done
         with Unix.Unix_error _ -> ());
        close_quiet w.res_fd;
        try ignore (Util.retry_eintr (fun () -> Unix.waitpid [] w.pid))
        with Unix.Unix_error _ -> ())
      !workers;
    workers := [];
    (* In-process fallback: quarantined poison tasks get exactly one
       retry here (the fault hooks are read only in children, so a task
       that only crashed because of an injected fault now succeeds); the
       same path finishes leftovers after respawn exhaustion.  Identical
       task closures on a fresh solver keep the results byte-identical
       to a worker run. *)
    List.iter
      (fun i ->
        if Supervise.is_quarantined st i then
          notice "task %d (product %s): retrying poison task in-process" i
            tasks.(i).owner;
        match run_task_guarded tasks.(i) with
        | r -> results.(i) <- Some r
        | exception e ->
          (* Unknown exception even in-process: give up on this task; the
             merge phase degrades it to error[WORKER]. *)
          notice "task %d (product %s): in-process retry failed (%s)" i
            tasks.(i).owner (Printexc.to_string e))
      (Supervise.unresolved st)
  in
  Fun.protect ~finally:restore_sigpipe supervise;
  results

let run_tasks ~jobs ?deadline ?(max_respawns = 8) ?mem_limit ?cpu_limit
    (tasks : task array) =
  let n = Array.length tasks in
  let jobs = min jobs n in
  if jobs <= 1 then begin
    (* In-process path: no forks, no hooks, no guards — this is the
       reference schedule every supervised run must match byte for
       byte. *)
    let results = Array.make n None in
    Array.iteri (fun i t -> results.(i) <- Some (t.run ())) tasks;
    results
  end
  else run_supervised ~jobs ~deadline ~max_respawns ~mem_limit ~cpu_limit tasks
