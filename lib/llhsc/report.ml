(* Unified findings produced by the llhsc checkers.  Every finding carries
   enough context to trace it back to the DTS node (and, through the
   pipeline, to the delta module) that caused it. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  checker : string; (* "alloc" | "syntactic" | "semantic" *)
  node_path : string;
  message : string;
  loc : Devicetree.Loc.t;
  core : string list; (* unsat-core rule names, when the checker is SMT-based *)
}

let finding ?(severity = Error) ?(core = []) ?(loc = Devicetree.Loc.dummy) ~checker ~node_path
    fmt =
  Fmt.kstr (fun message -> { severity; checker; node_path; message; loc; core }) fmt

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Info -> Fmt.string ppf "info"

let pp ppf f =
  Fmt.pf ppf "[%a] %s: %s: %s" pp_severity f.severity f.checker f.node_path f.message;
  if f.core <> [] then Fmt.pf ppf " (core: %s)" (String.concat "; " f.core)

let errors findings = List.filter (fun f -> f.severity = Error) findings
let is_clean findings = errors findings = []

(* --- certification ------------------------------------------------------- *)

(* A verdict the independent checker would not certify is itself an error
   finding: the check in question may have silently passed on a wrong
   answer, so the run must not be reported clean. *)
let cert_findings (r : Smt.Solver.cert_report) =
  List.map
    (fun msg ->
      finding ~checker:"certify" ~node_path:"/" "uncertified verdict: %s" msg)
    r.Smt.Solver.failures

let pp_retry ppf (r : Smt.Solver.retry_report) =
  let recovered =
    List.filter (fun (e : Smt.Solver.retry_entry) -> e.recovered) r.retried
  in
  Fmt.pf ppf "escalation: %d/%d queries retried, %d recovered"
    (List.length r.Smt.Solver.retried)
    r.Smt.Solver.total_queries (List.length recovered);
  List.iter
    (fun (e : Smt.Solver.retry_entry) ->
      Fmt.pf ppf "@.  query %d:%s" e.rquery
        (if e.recovered then "" else " (exhausted ladder)");
      (* Per-attempt wall-clock is deliberately not printed: the rendered
         report must be byte-identical across runs (and across [--jobs]
         counts); timings stay available in the data record. *)
      List.iter
        (fun (a : Smt.Solver.attempt) ->
          Fmt.pf ppf "@.    attempt %d (x%d%s, polarity %a): %s, %d conflicts"
            a.attempt a.scale
            (match a.seed with
             | Some s -> Fmt.str ", seed %#x" s
             | None -> "")
            Smt.Escalation.pp_polarity a.polarity
            (match a.result with
             | `Sat -> "sat"
             | `Unsat -> "unsat"
             | `Unknown -> "unknown")
            a.conflicts)
        e.attempts)
    r.Smt.Solver.retried

(* Like [pp_retry], wall-clock stays out of the rendered report so it is
   byte-stable; [cert.time] remains in the record for tooling. *)
let pp_cert ppf (r : Smt.Solver.cert_report) =
  let certs = r.Smt.Solver.certs in
  let failures = List.length r.Smt.Solver.failures in
  Fmt.pf ppf "certification: %d queries certified, %d failures"
    (List.length certs) failures;
  List.iter
    (fun (c : Smt.Solver.cert) ->
      Fmt.pf ppf "@.  query %d: %s, trace %d steps%s" c.Smt.Solver.query
        (match c.Smt.Solver.verdict with `Sat -> "sat" | `Unsat -> "unsat")
        c.Smt.Solver.steps
        (if c.Smt.Solver.ok then "" else " [FAILED]"))
    certs
