(** Durable I/O: the one place every state-bearing write goes through.

    Two disciplines, matching the two kinds of state llhsc persists:

    - {b Whole files} (reports, port files, bench JSON, serve job inputs,
      compacted journals): {!write_file} writes to a temp file in the
      same directory, fsyncs it, renames it over the destination and
      fsyncs the directory.  A reader can never observe a partial file
      and a crash leaves either the old bytes or the new bytes, never a
      mix.
    - {b Append-only journals}: {!open_for_append} / {!out_string} /
      {!sync} are checked variants of the stdlib calls — every error,
      including fsync failure, is raised rather than swallowed, so the
      journal layer can degrade loudly instead of silently claiming
      durability it no longer has.

    {1 Fault injection}

    [LLHSC_FAULT_FS] holds a comma-separated schedule of seeded disk
    faults, in the style of the other [LLHSC_FAULT_*] hooks (inert in
    production, deterministic under test).  Each token is [<kind>@<n>]
    where [n] is a 1-based count of operations of that kind performed by
    this process:

    - [enospc@n] — the [n]-th write raises [ENOSPC] before writing.
    - [short@n] — the [n]-th write persists only half its bytes (a torn
      write), then raises [ENOSPC].
    - [eio-fsync@n] — the [n]-th fsync raises [EIO].
    - [crash-rename@n] — the [n]-th atomic commit SIGKILLs the process
      after the temp file is written and fsync'd but before the rename,
      simulating a crash in the commit window.
    - [erofs@n] — the [n]-th open-for-write raises [Sys_error]
      ("Read-only file system").

    Unrecognised tokens are ignored.  Counters are process-global;
    {!reset_faults} rewinds them for in-process unit tests. *)

(** Atomically replace [path] with [data]: write [path ^ ".tmp.<pid>"],
    fsync, rename over [path], fsync the parent directory.  On failure the
    temp file is removed and the original [path] is untouched.  Raises
    [Sys_error] or [Unix.Unix_error]. *)
val write_file : path:string -> string -> unit

(** [with_file ~path f] is {!write_file} for callers that stream their
    output: [f] writes to a channel backed by the temp file, and the
    atomic fsync/rename commit happens after [f] returns.  If [f] raises,
    the temp file is removed and [path] is untouched. *)
val with_file : path:string -> (out_channel -> unit) -> unit

(** Open for appending (creating if needed, mode 0o644).  Raises
    [Sys_error], including the injected [erofs@n] fault. *)
val open_for_append : string -> out_channel

(** Checked write: raises [Unix.Unix_error (ENOSPC, _, _)] under the
    [enospc@n]/[short@n] faults ([short] flushes the half-written prefix
    first, leaving a torn record on disk, exactly like a real short
    write on a full disk). *)
val out_string : out_channel -> string -> unit

(** Flush then fsync, retrying [EINTR].  Unlike the stdlib idiom this
    PROPAGATES failure — [Sys_error] from the flush, [Unix.Unix_error]
    from the fsync (including the injected [eio-fsync@n]) — because a
    record must never be reported durable when its fsync failed. *)
val sync : out_channel -> unit

(** Rewind the process-global fault-schedule counters (unit tests only;
    production code never calls this). *)
val reset_faults : unit -> unit
