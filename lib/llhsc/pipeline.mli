(** The end-to-end llhsc workflow (Fig. 2): allocation, delta application
    per product, then a check phase sliced into independent tasks (chunks
    of syntactic obligations + one semantic task per product), each on a
    fresh solver instance, optionally sharded across forked workers
    ([?jobs]); the cross-VM partition check runs in the parent after the
    merge barrier. *)

type product = {
  name : string;           (** "vm1", ..., "platform" *)
  features : string list;
  tree : Devicetree.Tree.t;
  findings : Report.finding list;
}

type outcome = {
  products : product list;
  alloc_findings : Report.finding list;
  partition_findings : Report.finding list; (** cross-VM checks *)
  delta_orders : (string * string list) list; (** product -> application order *)
  errors : Diag.t list;
      (** Per-phase failures (bad product, broken schema, ...) that were
          isolated so the rest of the run could proceed; empty on a fully
          healthy run. *)
  cert : Smt.Solver.cert_report option;
      (** [Some] iff the run was certified ([~certify:true]): per-query
          certificate stats plus any certification failures.  A failure
          means a solver verdict could not be independently validated and
          the run is not [ok]. *)
  retry : Smt.Solver.retry_report option;
      (** [Some] iff a retry policy was in force ([?retry]): per-query
          escalation attempt logs for every query that needed more than
          one attempt. *)
  replayed : string list;
      (** Product names (plus ["partition"]) whose verdicts were replayed
          from the resume journal instead of re-checked; empty on a
          non-resumed run. *)
  journal_fault : string option;
      (** [Some reason] when a journal write/fsync failed mid-run: the
          run carried on unjournaled (fail-operational) and the report
          carries a [warning[JOURNAL]].  Deliberately not part of
          {!ok}/the exit code — checking itself still concluded. *)
}

(** All checks clean (warnings allowed), no isolated phase errors, and —
    when certifying — every verdict certified? *)
val ok : outcome -> bool

(** [run ?exclusive ?budget ~model ~core ~deltas ~schemas_for ~vm_requests ()].
    [vm_requests] lists each VM's (possibly partial) feature selection; the
    alloc checker completes them, and the platform product is the union of
    the completed VM products.  [schemas_for] supplies the binding schemas
    for a generated tree (letting stride-dependent rules follow the tree's
    cell context).

    [budget] bounds every solver query of the run (see
    [Sat.Solver.budget]); exhausted queries surface as "inconclusive"
    warnings rather than hanging.  An error in one phase (e.g. one corrupt
    product) is converted to a diagnostic in [outcome.errors] and the
    remaining products are still checked.

    [certify] certifies every solver verdict of the run against the
    independent proof/model checker (see [Smt.Solver.create]); results land
    in [outcome.cert], and any failure makes the outcome not [ok]
    ([Unknown] verdicts are exempt).

    [retry] installs a retry-with-escalation ladder (see
    [Smt.Escalation]): queries whose budget runs out are re-run with
    scaled budgets and diversified restarts before degrading to an
    "inconclusive" warning; every attempt is logged in [outcome.retry],
    and certification applies to whichever attempt concludes.

    [journal] makes the run crash-safe: one fsync'd JSONL record per
    completed product (content hash + findings + certification status).
    [resume] replays a previously loaded journal (see [Journal.load]):
    products whose content hash matches a trusted entry are skipped —
    findings replayed verbatim — and stale or untrusted entries are
    re-checked.  [inputs_hash] is the caller-computed hash of the run's
    raw inputs and verdict-affecting flags, threaded into every record's
    content hash.

    [unsound] is test-only fault injection forwarded to the underlying
    SAT solver (see [Sat.Solver.inject_unsoundness]); the
    [Force_unknown] mutation exercises escalation and degradation paths
    without unsoundness.  With per-task solvers the injection period is
    counted per task, identically at every job count.

    [jobs] (default 1) dispatches the check-phase tasks across a
    supervised pool of that many forked worker processes
    (see {!Shard.run_tasks}); [jobs <= 0] auto-detects the number of
    online CPU cores.  The rendered report is byte-identical for every
    job count — including certifying and retrying runs — because task
    slicing, solver instantiation and merge order never depend on
    [jobs].  Only the parent writes the journal, and replay is decided
    before sharding, so [jobs] composes with [journal]/[resume] (a
    journal written at one job count resumes at any other).

    The pool is self-healing: a crashed worker's in-flight task is
    reassigned to a replacement worker (bounded by [max_respawns],
    default 8); a task whose lease outlives [task_deadline] seconds has
    its worker SIGKILLed and is reassigned; a task that crashes two
    workers is quarantined and retried once in-process.  Only a task
    that fails every avenue degrades its product to an isolated
    [WORKER] diagnostic in [outcome.errors].  [mem_limit] (MiB) and
    [cpu_limit] (seconds) install per-worker [RLIMIT_AS]/[RLIMIT_CPU]
    guards; a tripped guard degrades that task to an [error[RESOURCE]]
    diagnostic instead of killing the checker.  None of the supervision
    knobs affect verdicts or report bytes.

    [runner] replaces the local task pool with a caller-supplied
    executor (the fleet dispatcher): it receives the names of the
    products replayed from the journal (so remote workers can rebuild
    the identical task array via {!plan_tasks}[ ~skip]) and the task
    array, and must return one result per index ([None] for tasks that
    failed every avenue).  When present, [jobs]/[task_deadline]/
    [max_respawns]/[mem_limit]/[cpu_limit] are ignored; merge, journal
    and partition check behave identically either way. *)
val run :
  ?exclusive:string list ->
  ?budget:Sat.Solver.budget ->
  ?certify:bool ->
  ?retry:Smt.Escalation.t ->
  ?unsound:Sat.Solver.unsound_mutation ->
  ?inputs_hash:string ->
  ?journal:Journal.sink ->
  ?resume:Journal.entry list ->
  ?jobs:int ->
  ?task_deadline:float ->
  ?max_respawns:int ->
  ?mem_limit:int ->
  ?cpu_limit:int ->
  ?runner:(skip:string list -> Shard.task array -> Shard.result option array) ->
  model:Featuremodel.Model.t ->
  core:Devicetree.Tree.t ->
  deltas:Delta.Lang.t list ->
  schemas_for:(Devicetree.Tree.t -> Schema.Binding.t list) ->
  vm_requests:string list list ->
  unit ->
  outcome

(** Rebuild the check-phase task array from raw inputs, exactly as [run]
    would plan it.  This is the fleet worker's half of the distributed
    contract: the dispatcher plans with its journal and ships the inputs
    plus [skip] (the names of the products it replayed); a worker calling
    [plan_tasks] with the same inputs and [skip] obtains an array whose
    index [i] runs the very closure the dispatcher's own pool would have
    run — same solver construction, same obligation slicing, same query
    numbering.  Planning diagnostics are discarded here (the dispatcher
    reports them); allocation rejection yields [[||]]. *)
val plan_tasks :
  ?exclusive:string list ->
  ?budget:Sat.Solver.budget ->
  ?certify:bool ->
  ?retry:Smt.Escalation.t ->
  ?unsound:Sat.Solver.unsound_mutation ->
  ?skip:string list ->
  model:Featuremodel.Model.t ->
  core:Devicetree.Tree.t ->
  deltas:Delta.Lang.t list ->
  schemas_for:(Devicetree.Tree.t -> Schema.Binding.t list) ->
  vm_requests:string list list ->
  unit ->
  Shard.task array

val pp_outcome : Format.formatter -> outcome -> unit
