(** The end-to-end llhsc workflow (Fig. 2): allocation, delta application
    per product, syntactic + semantic checking — all SMT work on one
    incremental solver instance per run. *)

type product = {
  name : string;           (** "vm1", ..., "platform" *)
  features : string list;
  tree : Devicetree.Tree.t;
  findings : Report.finding list;
}

type outcome = {
  products : product list;
  alloc_findings : Report.finding list;
  partition_findings : Report.finding list; (** cross-VM checks *)
  delta_orders : (string * string list) list; (** product -> application order *)
  errors : Diag.t list;
      (** Per-phase failures (bad product, broken schema, ...) that were
          isolated so the rest of the run could proceed; empty on a fully
          healthy run. *)
  cert : Smt.Solver.cert_report option;
      (** [Some] iff the run was certified ([~certify:true]): per-query
          certificate stats plus any certification failures.  A failure
          means a solver verdict could not be independently validated and
          the run is not [ok]. *)
}

(** All checks clean (warnings allowed), no isolated phase errors, and —
    when certifying — every verdict certified? *)
val ok : outcome -> bool

(** [run ?exclusive ?budget ~model ~core ~deltas ~schemas_for ~vm_requests ()].
    [vm_requests] lists each VM's (possibly partial) feature selection; the
    alloc checker completes them, and the platform product is the union of
    the completed VM products.  [schemas_for] supplies the binding schemas
    for a generated tree (letting stride-dependent rules follow the tree's
    cell context).

    [budget] bounds every solver query of the run (see
    [Sat.Solver.budget]); exhausted queries surface as "inconclusive"
    warnings rather than hanging.  An error in one phase (e.g. one corrupt
    product) is converted to a diagnostic in [outcome.errors] and the
    remaining products are still checked.

    [certify] certifies every solver verdict of the run against the
    independent proof/model checker (see [Smt.Solver.create]); results land
    in [outcome.cert], and any failure makes the outcome not [ok]
    ([Unknown] verdicts are exempt). *)
val run :
  ?exclusive:string list ->
  ?budget:Sat.Solver.budget ->
  ?certify:bool ->
  model:Featuremodel.Model.t ->
  core:Devicetree.Tree.t ->
  deltas:Delta.Lang.t list ->
  schemas_for:(Devicetree.Tree.t -> Schema.Binding.t list) ->
  vm_requests:string list list ->
  unit ->
  outcome

val pp_outcome : Format.formatter -> outcome -> unit
