(* A second, larger case study: a quad-core RV64 SBC with two CPU clusters,
   four memory banks, two UARTs, two virtio-mmio devices, a GPIO block and
   virtual network channels, partitioned into three VMs.

   Where the paper's CustomSBC (Listing 1) exercises the minimal shapes,
   this fixture stresses the stack: cluster extraction for Bao, interrupt
   topology through a PLIC, per-bank memory features with full RAM
   partitioning, three-way exclusive allocation, and a ~hundred-product
   feature model. *)

module T = Devicetree.Tree

let core_dts =
  {|
/dts-v1/;

/ {
    #address-cells = <1>;
    #size-cells = <1>;
    compatible = "quad,rv64-sbc";

    cpus {
        #address-cells = <1>;
        #size-cells = <0>;

        cluster0 {
            #address-cells = <1>;
            #size-cells = <0>;
            cpu@0 { device_type = "cpu"; compatible = "riscv"; reg = <0>; };
            cpu@1 { device_type = "cpu"; compatible = "riscv"; reg = <1>; };
        };
        cluster1 {
            #address-cells = <1>;
            #size-cells = <0>;
            cpu@2 { device_type = "cpu"; compatible = "riscv"; reg = <2>; };
            cpu@3 { device_type = "cpu"; compatible = "riscv"; reg = <3>; };
        };
    };

    memory@80000000 { device_type = "memory"; reg = <0x80000000 0x10000000>; };
    memory@90000000 { device_type = "memory"; reg = <0x90000000 0x10000000>; };
    memory@a0000000 { device_type = "memory"; reg = <0xa0000000 0x10000000>; };
    memory@b0000000 { device_type = "memory"; reg = <0xb0000000 0x10000000>; };

    soc {
        #address-cells = <1>;
        #size-cells = <1>;
        ranges;
        interrupt-parent = <&plic>;

        plic: interrupt-controller@c000000 {
            compatible = "riscv,plic0";
            interrupt-controller;
            #interrupt-cells = <1>;
            reg = <0xc000000 0x4000000>;
        };

        uart@10000000 {
            compatible = "ns16550a";
            reg = <0x10000000 0x100>;
            interrupts = <10>;
        };

        uart@10001000 {
            compatible = "ns16550a";
            reg = <0x10001000 0x100>;
            interrupts = <11>;
        };

        virtio@10002000 {
            compatible = "virtio,mmio";
            reg = <0x10002000 0x1000>;
            interrupts = <1>;
        };

        virtio@10003000 {
            compatible = "virtio,mmio";
            reg = <0x10003000 0x1000>;
            interrupts = <2>;
        };

        gpio@10004000 {
            compatible = "quad,gpio";
            reg = <0x10004000 0x1000>;
            interrupts = <3>;
        };
    };
};
|}

let core_tree () = T.of_source ~file:"quad-rv64.dts" core_dts

(* Per-bank memory features, per-CPU features, OR groups throughout: a VM
   may take several CPUs or banks; cross-VM exclusivity is the multi-product
   model's job. *)
let feature_model_src =
  {|
feature abstract QuadRV64 {
    mandatory abstract memory or {
        bank@80000000;
        bank@90000000;
        bank@a0000000;
        bank@b0000000;
    }
    mandatory abstract cpus or {
        cpu@0;
        cpu@1;
        cpu@2;
        cpu@3;
    }
    optional abstract uarts or {
        uart@10000000;
        uart@10001000;
    }
    optional abstract virtio or {
        virtio@10002000;
        virtio@10003000;
    }
    optional gpio;
    optional abstract vnet xor {
        vnet0;
        vnet1;
    }
}
constraint gpio => uart@10000000;
|}

let feature_model () = Featuremodel.Parse.parse feature_model_src

(* Removal deltas per optional hardware node, plus the virtual-network
   additions.  Everything is 32-bit from the start, so no cell-width
   rewrites are needed. *)
let deltas_src =
  {|
delta d-vnet when (vnet0 || vnet1) {
    modifies / {
        vEthernet {
            #address-cells = <1>;
            #size-cells = <1>;
            ranges;
        };
    };
}

delta d-vnet0 after d-vnet when vnet0 {
    adds binding vEthernet {
        vnet0@c0000000 {
            compatible = "veth";
            reg = <0xc0000000 0x10000>;
            id = <0>;
        };
    };
}

delta d-vnet1 after d-vnet when vnet1 {
    adds binding vEthernet {
        vnet1@c0010000 {
            compatible = "veth";
            reg = <0xc0010000 0x10000>;
            id = <1>;
        };
    };
}

delta rm-bank0 when !bank@80000000 { removes memory@80000000; }
delta rm-bank1 when !bank@90000000 { removes memory@90000000; }
delta rm-bank2 when !bank@a0000000 { removes memory@a0000000; }
delta rm-bank3 when !bank@b0000000 { removes memory@b0000000; }
delta rm-cpu0 when !cpu@0 { removes cpu@0; }
delta rm-cpu1 when !cpu@1 { removes cpu@1; }
delta rm-cpu2 when !cpu@2 { removes cpu@2; }
delta rm-cpu3 when !cpu@3 { removes cpu@3; }
delta rm-uart0 when !uart@10000000 { removes uart@10000000; }
delta rm-uart1 when !uart@10001000 { removes uart@10001000; }
delta rm-virtio0 when !virtio@10002000 { removes virtio@10002000; }
delta rm-virtio1 when !virtio@10003000 { removes virtio@10003000; }
delta rm-gpio when !gpio { removes gpio@10004000; }
|}

let deltas () = Delta.Parse.parse ~file:"quad-rv64.deltas" deltas_src

let schemas_src =
  [ {|
$id: memory
select:
  node-name: memory
properties:
  device_type:
    const: memory
  reg:
    minItems: 1
    maxItems: 16
    multipleOf: 2
required: [device_type, reg]
|};
    {|
$id: uart
select:
  compatible: [ns16550a]
properties:
  compatible:
    const: ns16550a
  reg:
    minItems: 1
    maxItems: 1
    multipleOf: 2
required: [compatible, reg, interrupts]
|};
    {|
$id: virtio
select:
  compatible: ["virtio,mmio"]
properties:
  reg:
    minItems: 1
    maxItems: 1
    multipleOf: 2
required: [compatible, reg, interrupts]
|};
    {|
$id: veth
select:
  compatible: [veth]
properties:
  compatible:
    const: veth
  reg:
    minItems: 1
    maxItems: 1
    multipleOf: 2
  id:
    type: cells
required: [compatible, reg, id]
|};
    {|
$id: cpu
select:
  node-name: cpu
properties:
  device_type:
    const: cpu
  compatible:
    enum: [riscv]
  reg:
    minItems: 1
    maxItems: 1
required: [device_type, compatible, reg]
|};
    {|
$id: plic
select:
  compatible: ["riscv,plic0"]
properties:
  reg:
    minItems: 1
    maxItems: 1
    multipleOf: 2
required: [compatible, reg, interrupt-controller, "#interrupt-cells"]
|}
  ]

let schemas_for _tree = List.map Schema.Binding.of_string schemas_src

(* Three fully partitioned VMs. *)
let vm1_features =
  [ "bank@80000000"; "bank@90000000"; "cpu@0"; "cpu@1"; "uart@10000000"; "gpio"; "vnet0" ]

let vm2_features = [ "bank@a0000000"; "cpu@2"; "uart@10001000"; "virtio@10002000"; "vnet1" ]
let vm3_features = [ "bank@b0000000"; "cpu@3"; "virtio@10003000" ]

let exclusive = [ "memory"; "cpus"; "uarts"; "virtio" ]

let run_pipeline ?budget ?(certify = false) ?retry ?inputs_hash ?journal
    ?resume ?jobs ?task_deadline ?max_respawns ?mem_limit ?cpu_limit () =
  Pipeline.run ~exclusive ?budget ~certify ?retry ?inputs_hash ?journal
    ?resume ?jobs ?task_deadline ?max_respawns ?mem_limit ?cpu_limit
    ~model:(feature_model ()) ~core:(core_tree ())
    ~deltas:(deltas ()) ~schemas_for
    ~vm_requests:[ vm1_features; vm2_features; vm3_features ]
    ()
