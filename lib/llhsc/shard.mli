(** Supervised fork-based worker pool for the pipeline's per-product
    check phase.

    The pipeline slices each product's checking work into independent
    tasks (chunks of syntactic obligations, one semantic task per
    product), each of which runs on a {e fresh} solver instance and
    produces a {!result}.  [run_tasks] executes the task list either
    in-process (`jobs <= 1`) or dynamically dispatched across up to
    [jobs] forked worker processes; because every task owns its solver,
    the per-task results — findings, certificate stats, retry logs,
    isolated diagnostics — are identical either way, and the pipeline's
    canonical-order merge makes the rendered report byte-identical
    across job counts {e and} across worker crash/reassignment
    schedules.

    The pool is self-healing rather than deal-once:

    - {b Leases and deadlines.}  The parent dispatches one task index at
      a time down a per-worker command pipe; the worker answers with a
      heartbeat line that starts the lease clock, then a result line.
      A lease that outlives [deadline] seconds marks the worker hung:
      it is SIGKILLed, reaped, and its task reassigned.
    - {b Reassignment and respawn.}  A dead worker's in-flight task goes
      back on the pending queue and a replacement worker is forked
      (bounded by [max_respawns], exponential backoff).  A task that has
      crashed {e two} workers is quarantined as a poison task and
      retried once in-process after the pool retires; only if that
      retry also dies does the task stay [None] (degraded to
      [error[WORKER]] by the merge).
    - {b Resource guards.}  Workers install [RLIMIT_AS] / [RLIMIT_CPU]
      from [mem_limit] (MiB) / [cpu_limit] (seconds) after the fork;
      a tripped guard surfaces as [Out_of_memory] or
      {!Diag.Resource_limit} and degrades to a per-task
      [error[RESOURCE]] diagnostic instead of killing the checker.

    Workers ship results back over a pipe, one JSON line per task
    ({!result_to_json}).  Workers never touch the journal: the parent
    remains the sole journal writer.

    Fault hooks (read only in worker children; in-process runs never
    consult them): [LLHSC_FAULT_KILL_WORKER=N] makes the worker
    dispatched task [N] SIGKILL itself; [LLHSC_FAULT_HANG_WORKER=N]
    makes it hang forever after the heartbeat; [LLHSC_FAULT_OOM_WORKER=N]
    makes it allocate until the memory guard trips (only when
    [mem_limit] is set). *)

(** Everything one task produced.  Query indices in [certs],
    [cert_failures] and [retried] are local to the task's solver (0-based
    from the task's first [check]); the merge renumbers them into the
    run-wide canonical sequence with {!renumber}. *)
type result = {
  product : string;  (** owning product, e.g. ["vm1"] *)
  findings : Report.finding list;
  errors : Diag.t list;
      (** isolated failures inside the task (already prefixed with the
          product name); non-empty means the product's check is incomplete *)
  queries : int;  (** solver [check] calls the task made *)
  certs : Smt.Solver.cert list;
  cert_failures : string list;
  retried : Smt.Solver.retry_entry list;
}

(** One unit of checking work.  [owner] is the product name, used for
    supervision notices and for synthesizing a degraded result when the
    task's own isolation is bypassed by a resource guard. *)
type task = { owner : string; run : unit -> result }

(** Shift every query index (including the ["query N: ..."] prefixes of
    [cert_failures]) by [offset]. *)
val renumber : offset:int -> result -> result

(** Run one task under the worker-side isolation guard: a known
    exception ([Diag.of_exn]) degrades to a result whose [errors] carry
    the diagnostic (prefixed with the owning product), unknown
    exceptions propagate.  This is THE task-execution function — the
    fork pool's children, its in-process fallback, and the remote fleet
    workers all run tasks through it, which is what keeps a task's
    result independent of where it ran. *)
val run_task_guarded : task -> result

(** Install the worker-side [RLIMIT_AS] ([mem_limit], MiB) /
    [RLIMIT_CPU] ([cpu_limit], seconds) resource guards in the calling
    process.  The fork pool installs them in each child after the fork;
    a remote fleet worker installs them once at startup. *)
val install_guards : mem_limit:int option -> cpu_limit:int option -> unit

val result_to_json : result -> Json.t

(** [None] on a structurally invalid encoding (e.g. a torn pipe line). *)
val result_of_json : Json.t -> result option

(** Number of online CPU cores (via [sysconf(_SC_NPROCESSORS_ONLN)]),
    at least 1.  [--jobs 0] resolves through this. *)
val online_cpus : unit -> int

(** [run_tasks ~jobs tasks] runs every task and returns its result, or
    [None] for tasks that could not be completed even after reassignment
    and an in-process quarantine retry.

    [jobs <= 1] (or a single task): all tasks run in this process, in
    order; exceptions propagate as usual (tasks are expected to do their
    own isolation).  This is the reference schedule: every supervised
    run merges to the same bytes.

    [jobs > 1]: the supervised pool described above.  [deadline] is the
    per-task lease in seconds (no deadline when omitted);
    [max_respawns] bounds replacement workers across the whole run
    (default 8); [mem_limit] (MiB) and [cpu_limit] (seconds) install
    per-worker rlimit guards. *)
val run_tasks :
  jobs:int ->
  ?deadline:float ->
  ?max_respawns:int ->
  ?mem_limit:int ->
  ?cpu_limit:int ->
  task array ->
  result option array
