(** Fork-based worker pool for the pipeline's per-product check phase.

    The pipeline slices each product's checking work into independent
    tasks (chunks of syntactic obligations, one semantic task per
    product), each of which runs on a {e fresh} solver instance and
    produces a {!result}.  [run_tasks] executes the task list either
    in-process (`jobs <= 1`) or sharded across [jobs] forked worker
    processes; because every task owns its solver, the per-task results —
    findings, certificate stats, retry logs, isolated diagnostics — are
    identical either way, and the pipeline's canonical-order merge makes
    the rendered report byte-identical across job counts.

    Workers ship results back over a pipe, one JSON line per task
    ({!result_to_json}).  Workers never touch the journal: the parent
    remains the sole journal writer.  A worker that crashes (or is
    SIGKILLed by the fault harness via [LLHSC_FAULT_KILL_WORKER]) simply
    stops producing lines; its unfinished tasks stay [None] and the
    pipeline degrades each affected product to an isolated diagnostic. *)

(** Everything one task produced.  Query indices in [certs],
    [cert_failures] and [retried] are local to the task's solver (0-based
    from the task's first [check]); the merge renumbers them into the
    run-wide canonical sequence with {!renumber}. *)
type result = {
  product : string;  (** owning product, e.g. ["vm1"] *)
  findings : Report.finding list;
  errors : Diag.t list;
      (** isolated failures inside the task (already prefixed with the
          product name); non-empty means the product's check is incomplete *)
  queries : int;  (** solver [check] calls the task made *)
  certs : Smt.Solver.cert list;
  cert_failures : string list;
  retried : Smt.Solver.retry_entry list;
}

(** Shift every query index (including the ["query N: ..."] prefixes of
    [cert_failures]) by [offset]. *)
val renumber : offset:int -> result -> result

val result_to_json : result -> Json.t

(** [None] on a structurally invalid encoding (e.g. a torn pipe line). *)
val result_of_json : Json.t -> result option

(** [run_tasks ~jobs tasks] runs every task and returns its result, or
    [None] for tasks whose worker died before reporting.

    [jobs <= 1] (or a single task): all tasks run in this process, in
    order; exceptions propagate as usual (tasks are expected to do their
    own isolation).  [jobs > 1]: tasks are dealt round-robin to [jobs]
    forked workers; the parent drains each worker's pipe and reaps it.  An
    unknown exception inside a forked task is printed to stderr and the
    worker stops — surfacing as [None] results — rather than unwinding a
    second copy of the parent.

    Fault hook: when [LLHSC_FAULT_KILL_WORKER=N] is set, the forked worker
    owning global task index [N] SIGKILLs itself right before running that
    task (in-process runs ignore the hook — there is no worker to kill). *)
val run_tasks : jobs:int -> (unit -> result) array -> result option array
