(* Durable I/O with seeded fault injection.  See the .mli for the two
   disciplines (atomic whole-file replace, checked journal append) and
   the LLHSC_FAULT_FS schedule grammar.  The design constraint inherited
   from the other LLHSC_FAULT_* hooks: with the variable unset this
   module must behave exactly like the stdlib calls it wraps, and under
   a schedule the n-th operation of each kind must fail identically
   across runs, so harness failures reproduce from the seed alone. *)

(* --- fault schedule ---------------------------------------------------------- *)

type fault =
  | Enospc of int (* n-th write fails ENOSPC before writing *)
  | Short of int (* n-th write persists half, then ENOSPC *)
  | Eio_fsync of int (* n-th fsync fails EIO *)
  | Crash_rename of int (* n-th atomic commit dies before the rename *)
  | Erofs of int (* n-th open-for-write fails EROFS *)

let parse_schedule raw =
  List.filter_map
    (fun tok ->
      let tok = String.trim tok in
      match String.index_opt tok '@' with
      | None -> None
      | Some i -> (
        let kind = String.sub tok 0 i in
        let n = int_of_string_opt (String.sub tok (i + 1) (String.length tok - i - 1)) in
        match (kind, n) with
        | "enospc", Some n -> Some (Enospc n)
        | "short", Some n -> Some (Short n)
        | "eio-fsync", Some n -> Some (Eio_fsync n)
        | "crash-rename", Some n -> Some (Crash_rename n)
        | "erofs", Some n -> Some (Erofs n)
        | _ -> None))
    (String.split_on_char ',' raw)

(* Re-read the environment on every operation (a putenv-driven unit test
   may change the schedule mid-process) but only re-parse when the raw
   string actually changed. *)
let parsed : (string * fault list) option ref = ref None

let schedule () =
  match Sys.getenv_opt "LLHSC_FAULT_FS" with
  | None -> []
  | Some raw -> (
    match !parsed with
    | Some (r, fs) when r = raw -> fs
    | _ ->
      let fs = parse_schedule raw in
      parsed := Some (raw, fs);
      fs)

(* Operation counters, process-global so a schedule addresses the n-th
   write/fsync/commit/open of the whole run, whichever file it lands on. *)
let writes = ref 0
let fsyncs = ref 0
let commits = ref 0
let opens = ref 0

let reset_faults () =
  writes := 0;
  fsyncs := 0;
  commits := 0;
  opens := 0

let fires counter pred =
  incr counter;
  let n = !counter in
  List.exists (fun f -> pred f n) (schedule ())

let kill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

(* --- checked journal primitives ---------------------------------------------- *)

let open_for_append path =
  if fires opens (fun f n -> match f with Erofs m -> m = n | _ -> false) then
    raise (Sys_error (path ^ ": Read-only file system"));
  open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path

let out_string oc s =
  let enospc = fires writes (fun f n -> match f with Enospc m -> m = n | _ -> false) in
  let short =
    List.exists (function Short m -> m = !writes | _ -> false) (schedule ())
  in
  if short then begin
    (* A torn write: half the bytes land on disk, then the device is full. *)
    output_string oc (String.sub s 0 (String.length s / 2));
    (try flush oc with Sys_error _ -> ());
    raise (Unix.Unix_error (Unix.ENOSPC, "write", ""))
  end
  else if enospc then raise (Unix.Unix_error (Unix.ENOSPC, "write", ""))
  else output_string oc s

let sync oc =
  flush oc;
  if fires fsyncs (fun f n -> match f with Eio_fsync m -> m = n | _ -> false) then
    raise (Unix.Unix_error (Unix.EIO, "fsync", ""));
  Util.retry_eintr (fun () -> Unix.fsync (Unix.descr_of_out_channel oc))

(* --- atomic whole-file replace ------------------------------------------------ *)

(* Directory fsync makes the rename itself durable.  Some filesystems
   refuse fsync on a directory fd; those refusals are not data loss, so
   only genuine I/O errors propagate. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try Util.retry_eintr (fun () -> Unix.fsync fd)
        with
        | Unix.Unix_error
            ( ( Unix.EINVAL | Unix.ENOSYS | Unix.EBADF | Unix.EACCES
              | Unix.EPERM | Unix.EROFS | Unix.EOPNOTSUPP ),
              _,
              _ ) ->
          ())

let with_file ~path f =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  if fires opens (fun fl n -> match fl with Erofs m -> m = n | _ -> false) then
    raise (Sys_error (tmp ^ ": Read-only file system"));
  let oc = open_out_gen [ Open_wronly; Open_trunc; Open_creat; Open_binary ] 0o644 tmp in
  (try
     f oc;
     sync oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  if fires commits (fun fl n -> match fl with Crash_rename m -> m = n | _ -> false)
  then kill_self ();
  (try Unix.rename tmp path
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  fsync_dir (Filename.dirname path)

let write_file ~path data = with_file ~path (fun oc -> out_string oc data)
