(* Parser for delta files.  Reuses the DeviceTree lexer and the DTS node
   parser for operation bodies, so everything inside braces is ordinary DTS
   syntax.

     file  ::= delta*
     delta ::= "delta" name ["after" name ("," name)*] ["when" cond] "{" op* "}"
     op    ::= "adds" "binding" target body ";"?
             | "modifies" target body ";"?
             | "removes" target ";"
     cond  ::= feature names with "!", "&&", "||", parentheses
     target ::= "/" | node-name (resolved in the tree at application time)

   The [when] condition grammar maps onto [Featuremodel.Bexpr]. *)

module L = Devicetree.Lexer
module P = Devicetree.Parser

exception Error of string * Devicetree.Loc.t

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (msg, loc))) fmt

type state = P.state (* reuse the devicetree parser's token-stream state *)

let peek (st : state) = fst st.P.toks.(st.P.pos)
let peek_loc (st : state) = snd st.P.toks.(st.P.pos)
let advance (st : state) = if st.P.pos < Array.length st.P.toks - 1 then st.P.pos <- st.P.pos + 1

let expect st tok what =
  if peek st = tok then advance st
  else error (peek_loc st) "expected %s, found %a" what L.pp_token (peek st)

let ident st what =
  match peek st with
  | L.IDENT name ->
    advance st;
    name
  | tok -> error (peek_loc st) "expected %s, found %a" what L.pp_token tok

(* --- when-conditions ------------------------------------------------------- *)

let rec parse_or st =
  let a = ref (parse_and st) in
  while peek st = L.OP 'O' do
    advance st;
    a := Featuremodel.Bexpr.Or (!a, parse_and st)
  done;
  !a

and parse_and st =
  let a = ref (parse_not st) in
  while peek st = L.OP 'A' do
    advance st;
    a := Featuremodel.Bexpr.And (!a, parse_not st)
  done;
  !a

and parse_not st =
  match peek st with
  | L.OP '!' ->
    advance st;
    Featuremodel.Bexpr.Not (parse_not st)
  | L.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st L.RPAREN "')'";
    e
  | L.IDENT name ->
    advance st;
    Featuremodel.Bexpr.Var name
  | tok -> error (peek_loc st) "expected condition, found %a" L.pp_token tok

(* --- operations ------------------------------------------------------------- *)

(* A target is "/", a bare node name, or an absolute path.  The DTS lexer
   splits "/cpus/cpu@0" into DIRECTIVE "cpus" (the /word/ pattern) followed
   by name tokens; reassemble the path here. *)
let parse_target st =
  let buf = ref "" in
  let rec segments () =
    match peek st with
    | L.DIRECTIVE d ->
      advance st;
      buf := !buf ^ "/" ^ d;
      segments ()
    | L.SLASH ->
      advance st;
      (match peek st with
       | L.IDENT s ->
         advance st;
         buf := !buf ^ "/" ^ s;
         segments ()
       | _ -> ())
    | L.IDENT s when !buf <> "" ->
      advance st;
      buf := !buf ^ "/" ^ s;
      segments ()
    | _ -> ()
  in
  match peek st with
  | L.SLASH | L.DIRECTIVE _ ->
    segments ();
    if !buf = "" then "/" else !buf
  | L.IDENT name ->
    advance st;
    name
  | tok -> error (peek_loc st) "expected target node, found %a" L.pp_token tok

let parse_body st ~target =
  let loc = peek_loc st in
  P.parse_node_body st ~labels:[] ~name:target ~loc

let parse_operation st =
  match peek st with
  | L.IDENT "adds" ->
    advance st;
    (match peek st with
     | L.IDENT "binding" -> advance st
     | _ -> ());
    let target = parse_target st in
    let body = parse_body st ~target in
    if peek st = L.SEMI then advance st;
    Lang.Adds { target; body }
  | L.IDENT "modifies" ->
    advance st;
    let target = parse_target st in
    let body = parse_body st ~target in
    if peek st = L.SEMI then advance st;
    Lang.Modifies { target; body }
  | L.IDENT "removes" ->
    advance st;
    let target = parse_target st in
    expect st L.SEMI "';'";
    Lang.Removes { target }
  | tok -> error (peek_loc st) "expected 'adds', 'modifies' or 'removes', found %a" L.pp_token tok

let parse_delta st =
  let loc = peek_loc st in
  expect st (L.IDENT "delta") "'delta'";
  let name = ident st "delta name" in
  let after = ref [] in
  if peek st = L.IDENT "after" then begin
    advance st;
    after := [ ident st "delta name" ];
    while peek st = L.COMMA do
      advance st;
      after := ident st "delta name" :: !after
    done
  end;
  let condition =
    if peek st = L.IDENT "when" then begin
      advance st;
      Some (parse_or st)
    end
    else None
  in
  expect st L.LBRACE "'{'";
  let ops = ref [] in
  while peek st <> L.RBRACE do
    ops := parse_operation st :: !ops
  done;
  expect st L.RBRACE "'}'";
  if peek st = L.SEMI then advance st;
  { Lang.name; after = List.rev !after; condition; ops = List.rev !ops; loc }

(* Referential validation of a (possibly multi-file) delta set: names must
   be unique and every [after] must reference a declared delta. *)
let validate deltas =
  let names = List.map (fun d -> d.Lang.name) deltas in
  List.iter
    (fun d ->
      if List.length (List.filter (String.equal d.Lang.name) names) > 1 then
        error d.Lang.loc "duplicate delta name %s" d.Lang.name;
      List.iter
        (fun a ->
          if not (List.mem a names) then
            error d.Lang.loc "delta %s is declared after unknown delta %s" d.Lang.name a)
        d.Lang.after)
    deltas

let parse ?(validate_refs = true) ~file src =
  let toks = L.tokenize ~file src in
  let st = { P.toks; pos = 0; errors = []; recover = false } in
  let deltas = ref [] in
  while peek st <> L.EOF do
    deltas := parse_delta st :: !deltas
  done;
  let deltas = List.rev !deltas in
  if validate_refs then validate deltas;
  deltas
