(** Conflict-driven clause-learning (CDCL) SAT solver.

    A from-scratch MiniSat-style solver: two-watched-literal propagation,
    first-UIP clause learning, EVSIDS decision heuristic with phase saving,
    Luby restarts, and activity/LBD-driven deletion of learnt clauses.  It
    supports incremental solving under assumptions and extraction of an
    unsatisfiable core over those assumptions, which is what the SMT layer
    builds its push/pop discipline and explanations on. *)

type t

(** Result of a [solve] call. *)
type result =
  | Sat     (** a model is available via {!value} / {!model} *)
  | Unsat   (** an assumption core is available via {!unsat_core} *)
  | Unknown
      (** the resource {!budget} was exhausted before a verdict; no model
          and no core are available (both are scrubbed — see {!model} and
          {!unsat_core}) *)

(** Resource limits for a single [solve] call.  Counters are relative to
    the call (not the solver's lifetime totals); [time_limit] is a
    wall-clock deadline in seconds.  A field left [None] is unlimited. *)
type budget = {
  max_conflicts : int option;
  max_decisions : int option;
  max_propagations : int option;
  time_limit : float option;
}

(** Budget constructor; omitted fields are unlimited. *)
val budget :
  ?max_conflicts:int ->
  ?max_decisions:int ->
  ?max_propagations:int ->
  ?time_limit:float ->
  unit ->
  budget

val create : unit -> t

(** [new_var t] allocates a fresh variable and returns it (0-based). *)
val new_var : t -> int

(** Number of variables allocated so far. *)
val num_vars : t -> int

(** Number of problem (non-learnt) clauses currently held. *)
val num_clauses : t -> int

(** Number of conflicts encountered since creation (a work measure). *)
val num_conflicts : t -> int

(** [add_clause t lits] adds a clause over literals built with {!Lit}.
    Returns [false] iff the clause system became trivially unsatisfiable
    (at decision level 0).  Variables must have been allocated. *)
val add_clause : t -> Lit.t list -> bool

(** Initial phase policy for one [solve] call — the polarity each variable
    is first tried with.  [Phase_saved] (the default) keeps the phases saved
    by earlier search; the other modes diversify a restarted attempt so it
    explores a different part of the tree. *)
type polarity_mode =
  | Phase_saved     (** phase saving: keep polarities from earlier search *)
  | Phase_false     (** reset every phase to [false] *)
  | Phase_true      (** reset every phase to [true] *)
  | Phase_inverted  (** flip every saved phase *)
  | Phase_random    (** seeded random phase per variable *)

(** [solve ?assumptions ?budget ?seed ?polarity_mode ?var_decay t] decides
    satisfiability of the current clause set under the given assumption
    literals.  With a [budget], the search is abandoned once any cap is hit
    and [Unknown] is returned; the solver remains usable (all learnt clauses
    are kept, and a later call — e.g. the next rung of an escalation ladder —
    can complete the search).

    The remaining parameters are deterministic restart diversification for
    such retries: [seed] (re)seeds the solver's internal PRNG and perturbs
    decision tie-breaking, [polarity_mode] sets the initial phases, and
    [var_decay] overrides the EVSIDS decay factor (must be in (0,1); default
    0.95, restored on every call).  None of them affect soundness — the same
    certificate machinery observes every attempt. *)
val solve :
  ?assumptions:Lit.t list ->
  ?budget:budget ->
  ?seed:int ->
  ?polarity_mode:polarity_mode ->
  ?var_decay:float ->
  t ->
  result

(** Value of a variable in the most recent [Sat] model.  After an
    [Unknown] answer there is no model and this returns [false]. *)
val value : t -> int -> bool

(** Value of a literal in the most recent [Sat] model. *)
val lit_value : t -> Lit.t -> bool

(** The most recent model as an array indexed by variable. *)
val model : t -> bool array

(** Subset of the assumptions sufficient for the last [Unsat] answer,
    in no particular order.  After an [Unknown] answer the core is empty:
    a budget-exhausted call never exposes a stale core from a previous
    [solve]. *)
val unsat_core : t -> Lit.t list

(** [set_polarity t v b] sets the initial phase of variable [v]. *)
val set_polarity : t -> int -> bool -> unit

(** {2 Certification}

    With proof logging enabled, the solver records a {!Proof} trace —
    original clauses, learnt clauses (each RUP w.r.t. the clauses before
    it) and learnt-clause deletions; a decision-level-0 refutation ends
    the trace with the empty clause.  The trace can be replayed by the
    independent {!Checker} to certify verdicts. *)

(** Start recording a certificate trace.  Must be called on a fresh
    solver; raises [Invalid_argument] if any clause was already added. *)
val enable_proof : t -> unit

(** The trace recorded so far, or [None] if logging is not enabled.  The
    trace accumulates across [solve] calls (clauses are never retracted),
    so incremental use replays a single growing certificate. *)
val proof : t -> Proof.t option

(** Test-only corruption of the solver, used by the certification tests
    and the fault harness to demonstrate that a wrong verdict or a wrong
    trace is caught by the checker rather than reported as clean.  Each
    mutation fires on every [n]th opportunity. *)
type unsound_mutation =
  | Drop_learnt_literal of int
      (** strengthen every [n]th learnt clause (>= 3 literals) by dropping
          a literal, corrupting both the clause database and the trace *)
  | Flip_model_bit of int
      (** flip variable [n mod num_vars] in every reported model *)
  | Mute_proof_step of int
      (** omit every [n]th learnt clause from the trace *)
  | Force_unknown of int
      (** report every [n]th [solve] call as [Unknown] without searching —
          a spurious resource exhaustion, used to exercise retry ladders
          and graceful degradation (not an unsoundness: [Unknown] claims
          nothing) *)

val inject_unsoundness : t -> unsound_mutation -> unit

(** Pretty-print solver statistics (decisions, conflicts, propagations). *)
val pp_stats : Format.formatter -> t -> unit
