(** Independent certificate checker: unit propagation only.

    Replays a {!Proof} trace against the original ([Input]) clauses.  Each
    learnt-clause [Add] must be RUP — assuming its negation and propagating
    over the earlier live clauses must conflict — or the step is rejected
    and the clause withheld from the database, so a corrupted trace cannot
    bootstrap later steps.  [Delete] retires a learnt clause (matched up to
    literal order, since the solver permutes clause literals in place).

    Verdicts are then validated against the replayed database:
    {!check_conflict} for Unsat (propagating the assumption literals must
    conflict; a level-0 refutation is carried by the trace's final empty
    clause) and {!check_model} for Sat (every input clause satisfied).

    The incremental interface ({!create}/{!replay}/...) lets a long-lived
    solver certify many queries without re-replaying the whole trace; the
    one-shot {!check_proof}/{!check_sat_model} wrap it for single solves. *)

type t

val create : unit -> t

val replay : t -> Proof.step -> (unit, string) result
(** Process one trace step.  [Error] means the certificate is invalid at
    this step; the checker remains usable (the offending clause is simply
    not admitted). *)

val check_conflict : t -> Lit.t list -> (unit, string) result
(** [check_conflict t assumptions] validates an Unsat verdict obtained
    under [assumptions] (empty for a top-level refutation).  The checker's
    state is restored afterwards, so further queries may follow. *)

val check_model : t -> (Lit.t -> bool) -> (unit, string) result
(** [check_model t valuation] validates a Sat verdict: every input clause
    replayed so far must contain a literal the valuation makes true. *)

val steps_replayed : t -> int

(** One-shot wrappers; on success both return the trace length. *)

val check_proof : ?assumptions:Lit.t list -> Proof.t -> (int, string) result
val check_sat_model : Proof.t -> (Lit.t -> bool) -> (int, string) result
