(** DIMACS CNF reading and writing.

    Interoperability with standard SAT tooling; also used by the test suite
    to replay fixed instances against the solver. *)

type cnf = {
  num_vars : int;
  clauses : Lit.t list list;
}

(** Malformed or truncated DIMACS input.  Mapped to a structured
    [error[PARSE]] diagnostic by [Diag.of_exn], so the CLI exits 2 with a
    message — never an uncaught exception. *)
exception Error of string

(** Parse DIMACS CNF text.  Raises {!Error} on bad input (bad token,
    out-of-range literal, malformed problem line, unterminated clause,
    clause count mismatch). *)
val parse : string -> cnf

val parse_file : string -> cnf

val print : Format.formatter -> cnf -> unit

(** Load a CNF into a fresh solver; returns the solver and [false] if the
    instance is already trivially unsatisfiable.  With [~proof:true] the
    solver records a certificate trace ({!Solver.enable_proof}) covering
    every loaded clause. *)
val load : ?proof:bool -> cnf -> Solver.t * bool
