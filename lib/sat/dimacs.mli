(** DIMACS CNF reading and writing.

    Interoperability with standard SAT tooling; also used by the test suite
    to replay fixed instances against the solver. *)

type cnf = {
  num_vars : int;
  clauses : Lit.t list list;
}

(** Parse DIMACS CNF text.  Raises [Failure] with a message on bad input. *)
val parse : string -> cnf

val parse_file : string -> cnf

val print : Format.formatter -> cnf -> unit

(** Load a CNF into a fresh solver; returns the solver and [false] if the
    instance is already trivially unsatisfiable.  With [~proof:true] the
    solver records a certificate trace ({!Solver.enable_proof}) covering
    every loaded clause. *)
val load : ?proof:bool -> cnf -> Solver.t * bool
