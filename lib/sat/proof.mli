(** Certificate traces (DRUP-style) recorded by the solver when proof
    logging is enabled, and replayed by the independent {!Checker}.

    A trace interleaves the original formula ([Input] steps, logged verbatim
    before solver-side simplification) with learnt-clause additions ([Add],
    each required to be RUP w.r.t. the earlier live clauses) and learnt
    clause deletions ([Delete]).  A refutation at decision level 0 ends with
    [Add [||]]; Unsat-under-assumptions verdicts carry no empty clause and
    are instead checked by {!Checker.check_conflict} with the assumption
    literals. *)

type step =
  | Input of Lit.t array
  | Add of Lit.t array
  | Delete of Lit.t array

type t

val create : unit -> t

val log_input : t -> Lit.t array -> unit
(** Record an original clause.  The array is copied. *)

val log_add : t -> Lit.t array -> unit
(** Record a learnt clause (RUP addition).  The array is copied. *)

val log_delete : t -> Lit.t array -> unit
(** Record the deletion of a learnt clause.  The array is copied. *)

val length : t -> int
val step : t -> int -> step
val iter : (step -> unit) -> t -> unit

val n_inputs : t -> int
(** Number of [Input] steps in the trace. *)

val pp_drup : Format.formatter -> t -> unit
(** Print the trace in DRUP-flavoured text: additions bare, deletions with
    a [d] prefix, inputs as [c i] comment lines. *)
