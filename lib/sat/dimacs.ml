type cnf = {
  num_vars : int;
  clauses : Lit.t list list;
}

exception Error of string

let error fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let parse text =
  let lines = String.split_on_char '\n' text in
  let num_vars = ref 0 in
  let declared_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> error "bad token %S" tok
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some d ->
      if abs d > !num_vars then error "literal %d out of declared range" d;
      current := Lit.of_dimacs d :: !current
  in
  let handle_line line =
    let line = String.trim line in
    if line = "" || line.[0] = 'c' then ()
    else if line.[0] = 'p' then begin
      match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
      | [ "p"; "cnf"; nv; nc ] -> (
        match (int_of_string_opt nv, int_of_string_opt nc) with
        | Some v, Some c when v >= 0 && c >= 0 ->
          num_vars := v;
          declared_clauses := c
        | _ -> error "malformed problem line %S" line)
      | _ -> error "malformed problem line %S" line
    end
    else
      String.split_on_char ' ' line
      |> List.filter (fun s -> s <> "")
      |> List.iter handle_token
  in
  List.iter handle_line lines;
  if !current <> [] then error "truncated input: clause not terminated by 0";
  let clauses = List.rev !clauses in
  if !declared_clauses >= 0 && List.length clauses <> !declared_clauses then
    error "clause count mismatch: header declares %d, file has %d"
      !declared_clauses (List.length clauses);
  { num_vars = !num_vars; clauses }

let parse_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let buf = really_input_string ic n in
  close_in ic;
  parse buf

let print ppf { num_vars; clauses } =
  Fmt.pf ppf "p cnf %d %d@." num_vars (List.length clauses);
  List.iter
    (fun clause ->
      List.iter (fun l -> Fmt.pf ppf "%d " (Lit.to_dimacs l)) clause;
      Fmt.pf ppf "0@.")
    clauses

let load ?(proof = false) { num_vars; clauses } =
  let solver = Solver.create () in
  if proof then Solver.enable_proof solver;
  for _ = 1 to num_vars do
    ignore (Solver.new_var solver : int)
  done;
  let ok = List.for_all (fun c -> Solver.add_clause solver c) clauses in
  (solver, ok)
