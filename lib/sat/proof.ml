(* Certificate trace for solver verdicts, in the spirit of DRUP
   (Heule et al., "Trimming while Checking Clausal Proofs").

   The solver appends three kinds of steps:

     - [Input c]   — a clause handed to [Solver.add_clause], recorded
                     verbatim *before* any simplification, so unit clauses
                     (which the solver enqueues rather than stores) and
                     tautologies are still part of the certified formula;
     - [Add c]     — a learnt clause, which must be RUP (reverse unit
                     propagation) with respect to all earlier live clauses;
                     an Unsat verdict at decision level 0 finalizes the
                     trace with [Add [||]];
     - [Delete c]  — a learnt clause retired by database reduction, from
                     which point the checker must stop using it.

   Literal arrays are copied at logging time: the solver reorders clause
   literals in place while maintaining watches, and the trace must pin the
   clause as it was derived. *)

type step =
  | Input of Lit.t array
  | Add of Lit.t array
  | Delete of Lit.t array

type t = {
  mutable steps : step array;
  mutable len : int;
}

let dummy = Input [||]
let create () = { steps = Array.make 64 dummy; len = 0 }

let push t step =
  if t.len = Array.length t.steps then begin
    let bigger = Array.make (2 * t.len) dummy in
    Array.blit t.steps 0 bigger 0 t.len;
    t.steps <- bigger
  end;
  t.steps.(t.len) <- step;
  t.len <- t.len + 1

let log_input t lits = push t (Input (Array.copy lits))
let log_add t lits = push t (Add (Array.copy lits))
let log_delete t lits = push t (Delete (Array.copy lits))
let length t = t.len

let step t i =
  if i < 0 || i >= t.len then invalid_arg "Proof.step: index out of bounds";
  t.steps.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.steps.(i)
  done

let n_inputs t =
  let n = ref 0 in
  iter (function Input _ -> incr n | Add _ | Delete _ -> ()) t;
  !n

(* DRUP-compatible text: inputs as comments (a DRUP file proper contains
   only additions and deletions; the formula lives in the CNF file). *)
let pp_drup ppf t =
  let lits ls = Array.iter (fun l -> Fmt.pf ppf "%d " (Lit.to_dimacs l)) ls in
  iter
    (function
      | Input c ->
        Fmt.pf ppf "c i ";
        lits c;
        Fmt.pf ppf "0@."
      | Add c ->
        lits c;
        Fmt.pf ppf "0@."
      | Delete c ->
        Fmt.pf ppf "d ";
        lits c;
        Fmt.pf ppf "0@.")
    t
