(* CDCL SAT solver (MiniSat lineage).

   Invariants worth keeping in mind while reading:
   - [assigns.(v)] is 0 while v is unassigned, +1/-1 once assigned; the value
     of a literal combines this with its sign.
   - every non-unit clause is watched by its first two literals; propagation
     maintains "if a watched literal is false, the other watch is true or the
     clause is unit/conflicting".
   - [trail] records assignments in order; [trail_lim.(d)] is the trail height
     at the moment decision level d+1 was opened.
   - learnt clauses are asserting: after [analyze], the learnt clause's first
     literal is the 1-UIP and becomes true upon backjumping. *)

type clause = {
  mutable lits : int array;
  learnt : bool;
  mutable activity : float;
  mutable lbd : int;
  mutable dead : bool;
}

let dummy_clause = { lits = [||]; learnt = false; activity = 0.; lbd = 0; dead = false }

type result = Sat | Unsat | Unknown

type budget = {
  max_conflicts : int option;
  max_decisions : int option;
  max_propagations : int option;
  time_limit : float option; (* wall-clock seconds for this call *)
}

let budget ?max_conflicts ?max_decisions ?max_propagations ?time_limit () =
  { max_conflicts; max_decisions; max_propagations; time_limit }

(* Test-only corruptions; see [inject_unsoundness].  Each fires on every
   [n]th opportunity, so a period doubles as a deterministic seed. *)
type unsound_mutation =
  | Drop_learnt_literal of int
  | Flip_model_bit of int
  | Mute_proof_step of int
  | Force_unknown of int

(* Restart diversification: initial phase policy for this [solve] call. *)
type polarity_mode =
  | Phase_saved
  | Phase_false
  | Phase_true
  | Phase_inverted
  | Phase_random

type t = {
  mutable ok : bool;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : clause Vec.t array; (* literal -> watching clauses *)
  mutable assigns : int array;          (* var -> 0 | +1 | -1 *)
  mutable level : int array;            (* var -> decision level *)
  mutable reason : clause array;        (* var -> implying clause or dummy *)
  mutable activity : float array;       (* var -> VSIDS activity *)
  mutable polarity : bool array;        (* var -> saved phase *)
  mutable seen : bool array;            (* var -> scratch mark for analyze *)
  order : Heap.t;
  trail : int Vec.t;                    (* literals, in assignment order *)
  trail_lim : int Vec.t;
  mutable qhead : int;
  mutable nvars : int;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable model : bool array;
  mutable core : int list;
  mutable assumptions : int array;
  (* statistics *)
  mutable n_decisions : int;
  mutable n_conflicts : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable max_learnts : float;
  (* resource limits for the current [solve] call (absolute, against the
     cumulative counters above); [max_int] / [infinity] = unlimited *)
  mutable lim_conflicts : int;
  mutable lim_decisions : int;
  mutable lim_propagations : int;
  mutable lim_deadline : float;
  (* certificate trace (None = proof logging off) *)
  mutable proof : Proof.t option;
  (* deliberate corruption for certification tests *)
  mutable unsound : unsound_mutation option;
  mutable unsound_tick : int;
  (* restart diversification (reset by every [solve] call) *)
  mutable rng : int64;               (* xorshift64* state, seeded per call *)
  mutable var_decay_inv : float;     (* 1 / VSIDS decay factor *)
}

let default_var_decay = 0.95
let clause_decay = 1. /. 0.999

let create () =
  let rec t =
    lazy
      {
        ok = true;
        clauses = Vec.create dummy_clause;
        learnts = Vec.create dummy_clause;
        watches = [||];
        assigns = [||];
        level = [||];
        reason = [||];
        activity = [||];
        polarity = [||];
        seen = [||];
        order = Heap.create (fun v -> (Lazy.force t).activity.(v));
        trail = Vec.create 0;
        trail_lim = Vec.create 0;
        qhead = 0;
        nvars = 0;
        var_inc = 1.0;
        cla_inc = 1.0;
        model = [||];
        core = [];
        assumptions = [||];
        n_decisions = 0;
        n_conflicts = 0;
        n_propagations = 0;
        n_restarts = 0;
        max_learnts = 0.;
        lim_conflicts = max_int;
        lim_decisions = max_int;
        lim_propagations = max_int;
        lim_deadline = infinity;
        proof = None;
        unsound = None;
        unsound_tick = 0;
        rng = 0x9E3779B97F4A7C15L;
        var_decay_inv = 1. /. default_var_decay;
      }
  in
  Lazy.force t

let grow_array a n dummy =
  let old = Array.length a in
  if n <= old then a
  else begin
    let a' = Array.make (max n (max 16 (2 * old))) dummy in
    Array.blit a 0 a' 0 old;
    a'
  end

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  let n = v + 1 in
  t.assigns <- grow_array t.assigns n 0;
  t.level <- grow_array t.level n 0;
  t.reason <- grow_array t.reason n dummy_clause;
  t.activity <- grow_array t.activity n 0.;
  t.polarity <- grow_array t.polarity n false;
  t.seen <- grow_array t.seen n false;
  let nlits = 2 * n in
  if nlits > Array.length t.watches then begin
    let old = Array.length t.watches in
    let w = Array.make (max nlits (max 32 (2 * old))) (Vec.create dummy_clause) in
    Array.blit t.watches 0 w 0 old;
    for i = old to Array.length w - 1 do
      w.(i) <- Vec.create dummy_clause
    done;
    t.watches <- w
  end;
  Heap.insert t.order v;
  v

let num_vars t = t.nvars
let num_clauses t = Vec.size t.clauses
let num_conflicts t = t.n_conflicts

(* --- certification hooks ------------------------------------------------- *)

let enable_proof t =
  if
    Vec.size t.clauses > 0 || Vec.size t.learnts > 0 || Vec.size t.trail > 0
    || not t.ok
  then invalid_arg "Solver.enable_proof: clauses already added";
  t.proof <- Some (Proof.create ())

let proof t = t.proof
let inject_unsoundness t m = t.unsound <- Some m

(* Fires every [n]th opportunity for the given mutation kind. *)
let unsound_fires t n =
  t.unsound_tick <- t.unsound_tick + 1;
  t.unsound_tick mod max 1 n = 0

(* +1 literal true, -1 false, 0 unassigned *)
let value_lit t l =
  let a = t.assigns.(Lit.var l) in
  if Lit.is_neg l then -a else a

let decision_level t = Vec.size t.trail_lim

let set_polarity t v b = t.polarity.(v) <- b

(* --- VSIDS -------------------------------------------------------------- *)

let var_rescale t =
  for v = 0 to t.nvars - 1 do
    t.activity.(v) <- t.activity.(v) *. 1e-100
  done;
  t.var_inc <- t.var_inc *. 1e-100

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then var_rescale t;
  Heap.decrease t.order v

let var_decay_activity t = t.var_inc <- t.var_inc *. t.var_decay_inv

let cla_bump t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let cla_decay_activity t = t.cla_inc <- t.cla_inc *. clause_decay

(* --- assignment --------------------------------------------------------- *)

let watch_list t l = t.watches.(l)

let attach t c =
  (* clause is watched by the negations of its first two literals *)
  Vec.push (watch_list t (Lit.neg c.lits.(0))) c;
  Vec.push (watch_list t (Lit.neg c.lits.(1))) c

let unchecked_enqueue t l reason =
  let v = Lit.var l in
  assert (t.assigns.(v) = 0);
  t.assigns.(v) <- (if Lit.is_neg l then -1 else 1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.polarity.(v) <- Lit.is_pos l;
  Vec.push t.trail l

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      t.assigns.(v) <- 0;
      t.reason.(v) <- dummy_clause;
      if not (Heap.in_heap t.order v) then Heap.insert t.order v
    done;
    t.qhead <- bound;
    Vec.shrink_to t.trail bound;
    Vec.shrink_to t.trail_lim lvl
  end

(* --- propagation -------------------------------------------------------- *)

exception Conflict of clause

let propagate t =
  try
    while t.qhead < Vec.size t.trail do
      let p = Vec.get t.trail t.qhead in
      t.qhead <- t.qhead + 1;
      t.n_propagations <- t.n_propagations + 1;
      let ws = watch_list t p in
      (* Rebuild the watch list in place while visiting it. *)
      let i = ref 0 and j = ref 0 in
      let n = Vec.size ws in
      (try
         while !i < n do
           let c = Vec.unsafe_get ws !i in
           incr i;
           if c.dead then () (* dropped lazily *)
           else begin
             let false_lit = Lit.neg p in
             (* Ensure the false literal is at position 1. *)
             if c.lits.(0) = false_lit then begin
               c.lits.(0) <- c.lits.(1);
               c.lits.(1) <- false_lit
             end;
             if value_lit t c.lits.(0) = 1 then begin
               (* Clause already satisfied: keep watching. *)
               Vec.unsafe_set ws !j c;
               incr j
             end
             else begin
               (* Look for a new literal to watch. *)
               let len = Array.length c.lits in
               let k = ref 2 in
               while !k < len && value_lit t c.lits.(!k) = -1 do
                 incr k
               done;
               if !k < len then begin
                 c.lits.(1) <- c.lits.(!k);
                 c.lits.(!k) <- false_lit;
                 Vec.push (watch_list t (Lit.neg c.lits.(1))) c
               end
               else begin
                 (* Unit or conflicting. *)
                 Vec.unsafe_set ws !j c;
                 incr j;
                 if value_lit t c.lits.(0) = -1 then begin
                   (* Conflict: copy the remaining watchers and abort. *)
                   while !i < n do
                     Vec.unsafe_set ws !j (Vec.unsafe_get ws !i);
                     incr i;
                     incr j
                   done;
                   Vec.shrink_to ws !j;
                   t.qhead <- Vec.size t.trail;
                   raise (Conflict c)
                 end
                 else unchecked_enqueue t c.lits.(0) c
               end
             end
           end
         done;
         Vec.shrink_to ws !j
       with Conflict _ as e -> raise e)
    done;
    None
  with Conflict c -> Some c

(* --- clause addition ---------------------------------------------------- *)

let add_clause t lits =
  (* Log the clause verbatim, before simplification: unit clauses are
     enqueued rather than stored, yet the checker must still see them as
     part of the certified formula. *)
  (match t.proof with
   | Some p -> Proof.log_input p (Array.of_list lits)
   | None -> ());
  if not t.ok then false
  else begin
    assert (decision_level t = 0);
    (* Simplify: drop duplicate and false literals, detect tautologies. *)
    let lits = List.sort_uniq Lit.compare lits in
    let tautology =
      List.exists (fun l -> List.exists (fun l' -> l' = Lit.neg l) lits) lits
      || List.exists (fun l -> value_lit t l = 1) lits
    in
    if tautology then true
    else begin
      let lits = List.filter (fun l -> value_lit t l <> -1) lits in
      match lits with
      | [] ->
        t.ok <- false;
        false
      | [ l ] ->
        unchecked_enqueue t l dummy_clause;
        (match propagate t with
         | None -> true
         | Some _ ->
           t.ok <- false;
           false)
      | _ ->
        let c =
          { lits = Array.of_list lits; learnt = false; activity = 0.; lbd = 0; dead = false }
        in
        Vec.push t.clauses c;
        attach t c;
        true
    end
  end

(* --- conflict analysis (first UIP) -------------------------------------- *)

let analyze t confl =
  let learnt = ref [] in
  let path_count = ref 0 in
  let p = ref (-1) (* literal, -1 = none yet *) in
  let index = ref (Vec.size t.trail - 1) in
  let btlevel = ref 0 in
  let confl = ref confl in
  let continue = ref true in
  while !continue do
    let c = !confl in
    if c.learnt then cla_bump t c;
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length c.lits - 1 do
      let q = c.lits.(k) in
      let v = Lit.var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        var_bump t v;
        t.seen.(v) <- true;
        if t.level.(v) >= decision_level t then incr path_count
        else begin
          learnt := q :: !learnt;
          if t.level.(v) > !btlevel then btlevel := t.level.(v)
        end
      end
    done;
    (* Select next literal on the trail to expand. *)
    let rec next () =
      let l = Vec.get t.trail !index in
      decr index;
      if t.seen.(Lit.var l) then l else next ()
    in
    let l = next () in
    p := l;
    t.seen.(Lit.var l) <- false;
    confl := t.reason.(Lit.var l);
    decr path_count;
    if !path_count <= 0 then continue := false
  done;
  let uip = Lit.neg !p in
  (* Conflict-clause minimisation: drop literals implied by the rest. *)
  let learnt_arr = Array.of_list (uip :: !learnt) in
  let is_redundant l =
    let c = t.reason.(Lit.var l) in
    c != dummy_clause
    && Array.for_all
         (fun q ->
           Lit.var q = Lit.var l || t.seen.(Lit.var q) || t.level.(Lit.var q) = 0)
         c.lits
  in
  let kept =
    Array.to_list learnt_arr
    |> List.filteri (fun i l -> i = 0 || not (is_redundant l))
  in
  (* Clear seen marks. *)
  List.iter (fun l -> t.seen.(Lit.var l) <- false) !learnt;
  t.seen.(Lit.var uip) <- false;
  (* LBD: number of distinct decision levels in the clause. *)
  let lbd =
    let levels = List.sort_uniq Int.compare (List.map (fun l -> t.level.(Lit.var l)) kept) in
    List.length levels
  in
  (* Recompute backtrack level on the kept clause. *)
  let btlevel =
    match kept with
    | [] | [ _ ] -> 0
    | _ :: rest ->
      List.fold_left (fun acc l -> max acc t.level.(Lit.var l)) 0 rest
  in
  (kept, btlevel, lbd)

(* Put the literal with the highest level at position 1 (second watch). *)
let order_second_watch t lits =
  let n = Array.length lits in
  if n > 1 then begin
    let best = ref 1 in
    for k = 2 to n - 1 do
      if t.level.(Lit.var lits.(k)) > t.level.(Lit.var lits.(!best)) then best := k
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!best);
    lits.(!best) <- tmp
  end

let record_learnt t lits lbd =
  let lits =
    (* Test-only corruption: dropping a literal yields a stronger clause
       that is typically no longer RUP.  Positions 0 and 1 carry the
       asserting/watch invariants, so only a trailing literal of a clause
       with >= 3 literals is removed. *)
    match t.unsound with
    | Some (Drop_learnt_literal n) when List.length lits >= 3 && unsound_fires t n
      ->
      List.filteri (fun i _ -> i < List.length lits - 1) lits
    | _ -> lits
  in
  (match t.proof with
   | Some p ->
     let mute =
       match t.unsound with
       | Some (Mute_proof_step n) -> unsound_fires t n
       | _ -> false
     in
     if not mute then Proof.log_add p (Array.of_list lits)
   | None -> ());
  match lits with
  | [] -> t.ok <- false
  | [ l ] -> unchecked_enqueue t l dummy_clause
  | first :: _ ->
    let arr = Array.of_list lits in
    order_second_watch t arr;
    let c = { lits = arr; learnt = true; activity = 0.; lbd; dead = false } in
    Vec.push t.learnts c;
    attach t c;
    cla_bump t c;
    unchecked_enqueue t first c

(* --- final conflict over assumptions (unsat core) ----------------------- *)

(* Core when the next assumption literal is already false: walk the
   implication graph from that literal back to assumption decisions. *)
let analyze_final_lit t p =
  (* [p] is the trail literal contradicting the failed assumption [neg p];
     the core collects assumption literals as given by the caller. *)
  let core = ref [ Lit.neg p ] in
  let v = Lit.var p in
  if t.level.(v) > 0 then begin
    t.seen.(v) <- true;
    let bottom = Vec.get t.trail_lim 0 in
    for i = Vec.size t.trail - 1 downto bottom do
      let l = Vec.get t.trail i in
      let w = Lit.var l in
      if t.seen.(w) then begin
        t.seen.(w) <- false;
        let r = t.reason.(w) in
        if r == dummy_clause then begin
          if w <> v then core := l :: !core
        end
        else
          Array.iter
            (fun q ->
              let u = Lit.var q in
              if u <> w && t.level.(u) > 0 then t.seen.(u) <- true)
            r.lits
      end
    done;
    t.seen.(v) <- false
  end;
  !core

(* --- learnt clause DB reduction ----------------------------------------- *)

let reduce_db t =
  (* Keep clauses with low LBD or high activity; drop the worst half. *)
  Vec.sort
    (fun a b ->
      match Int.compare a.lbd b.lbd with
      | 0 -> Float.compare b.activity a.activity
      | c -> c)
    t.learnts;
  let n = Vec.size t.learnts in
  let keep = n / 2 in
  let locked c =
    (* A clause that is the reason of a current assignment must stay. *)
    let l = c.lits.(0) in
    value_lit t l = 1 && t.reason.(Lit.var l) == c
  in
  for i = keep to n - 1 do
    let c = Vec.get t.learnts i in
    if (not (locked c)) && c.lbd > 2 then begin
      c.dead <- true;
      match t.proof with
      | Some p -> Proof.log_delete p c.lits
      | None -> ()
    end
  done;
  Vec.filter_in_place (fun c -> not c.dead) t.learnts
(* dead clauses are skipped (and dropped) lazily by [propagate]'s rebuild;
   we additionally purge them from watch lists here to bound memory. *)

let purge_watches t =
  Array.iter (fun ws -> Vec.filter_in_place (fun c -> not c.dead) ws) t.watches

(* --- search -------------------------------------------------------------- *)

let luby y x =
  (* Finite subsequences of the Luby sequence: 1 1 2 1 1 2 4 ... *)
  let rec find sz seq =
    if sz >= x + 1 then (sz, seq) else find ((2 * sz) + 1) (seq + 1)
  in
  let rec loop (sz, seq) x =
    if sz - 1 = x then (seq, x)
    else
      let sz = (sz - 1) / 2 in
      loop (sz, seq - 1) (x mod sz)
  in
  let sz, seq = find 1 0 in
  let seq, _ = loop (sz, seq) x in
  y ** float_of_int seq

let pick_branch_var t =
  let rec loop () =
    if Heap.is_empty t.order then None
    else
      let v = Heap.remove_max t.order in
      if t.assigns.(v) = 0 then Some v else loop ()
  in
  loop ()

exception Found_result of result

(* The deadline is only consulted when one was set: [Unix.gettimeofday] per
   loop iteration is cheap (vDSO) but not free, and most calls run
   unbudgeted. *)
let budget_exhausted t =
  t.n_conflicts >= t.lim_conflicts
  || t.n_decisions >= t.lim_decisions
  || t.n_propagations >= t.lim_propagations
  || (t.lim_deadline < infinity && Unix.gettimeofday () > t.lim_deadline)

let search t ~nof_conflicts =
  let conflicts = ref 0 in
  try
    while true do
      if budget_exhausted t then raise (Found_result Unknown);
      match propagate t with
      | Some confl ->
        t.n_conflicts <- t.n_conflicts + 1;
        incr conflicts;
        if decision_level t = 0 then begin
          t.ok <- false;
          t.core <- [];
          (* A level-0 conflict refutes the clause set outright: finalize
             the certificate with the empty clause. *)
          (match t.proof with
           | Some p -> Proof.log_add p [||]
           | None -> ());
          raise (Found_result Unsat)
        end;
        let learnt, btlevel, lbd = analyze t confl in
        (* Never backjump past the assumption levels we still rely on:
           literals below remain enqueued; the asserting literal's level is
           recomputed against the surviving trail. *)
        cancel_until t btlevel;
        record_learnt t learnt lbd;
        var_decay_activity t;
        cla_decay_activity t
      | None ->
        if nof_conflicts >= 0 && !conflicts >= nof_conflicts then begin
          (* Restart. *)
          t.n_restarts <- t.n_restarts + 1;
          cancel_until t (Array.length t.assumptions);
          raise Exit
        end;
        if
          float_of_int (Vec.size t.learnts) -. float_of_int (Vec.size t.trail)
          >= t.max_learnts
        then begin
          reduce_db t;
          purge_watches t
        end;
        (* Assumption decisions first. *)
        let dl = decision_level t in
        if dl < Array.length t.assumptions then begin
          let p = t.assumptions.(dl) in
          match value_lit t p with
          | 1 ->
            (* Already true: open a dummy level so indices stay aligned. *)
            Vec.push t.trail_lim (Vec.size t.trail)
          | -1 ->
            t.core <- analyze_final_lit t (Lit.neg p);
            raise (Found_result Unsat)
          | _ ->
            Vec.push t.trail_lim (Vec.size t.trail);
            unchecked_enqueue t p dummy_clause
        end
        else begin
          match pick_branch_var t with
          | None ->
            (* Complete assignment: SAT. *)
            t.model <- Array.init t.nvars (fun v -> t.assigns.(v) = 1);
            (match t.unsound with
             | Some (Flip_model_bit k) when t.nvars > 0 ->
               let v = abs k mod t.nvars in
               t.model.(v) <- not t.model.(v)
             | _ -> ());
            raise (Found_result Sat)
          | Some v ->
            t.n_decisions <- t.n_decisions + 1;
            let l = Lit.make ~var:v ~negated:(not t.polarity.(v)) in
            Vec.push t.trail_lim (Vec.size t.trail);
            unchecked_enqueue t l dummy_clause
        end
    done;
    assert false
  with
  | Exit -> None
  | Found_result r -> Some r

let set_budget_limits t = function
  | None ->
    t.lim_conflicts <- max_int;
    t.lim_decisions <- max_int;
    t.lim_propagations <- max_int;
    t.lim_deadline <- infinity
  | Some b ->
    let abs base = function Some n -> base + max 0 n | None -> max_int in
    t.lim_conflicts <- abs t.n_conflicts b.max_conflicts;
    t.lim_decisions <- abs t.n_decisions b.max_decisions;
    t.lim_propagations <- abs t.n_propagations b.max_propagations;
    t.lim_deadline <-
      (match b.time_limit with
       (* A non-positive limit is already expired; [neg_infinity] makes that
          deterministic rather than racing the clock's resolution. *)
       | Some s when s <= 0. -> neg_infinity
       | Some s -> Unix.gettimeofday () +. s
       | None -> infinity)

(* --- restart diversification --------------------------------------------- *)

(* Deterministic per-call PRNG (xorshift64 star): the same seed always
   yields the same search, so an escalation ladder's retries are
   reproducible. *)
let reseed t seed =
  (* Never let the state collapse to 0 (a xorshift fixed point). *)
  t.rng <- Int64.logor (Int64.mul (Int64.of_int seed) 0x2545F4914F6CDD1DL) 1L

let rand_bits t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  Int64.to_int (Int64.shift_right_logical x 2)

let rand_int t n = if n <= 0 then 0 else rand_bits t mod n
let rand_bool t = rand_bits t land 1 = 1

(* Apply the per-call diversification knobs.  Phases steer which half of the
   search tree is explored first; the seeded activity bumps reorder decision
   ties; a different VSIDS decay changes how fast the heuristic forgets — all
   deterministic given [seed], all sound (only heuristics are touched). *)
let apply_diversification t ~seed ~polarity_mode ~var_decay =
  t.var_decay_inv <-
    (match var_decay with
     | Some d when d > 0. && d < 1. -> 1. /. d
     | Some d -> invalid_arg (Printf.sprintf "Solver.solve: var_decay %g not in (0,1)" d)
     | None -> 1. /. default_var_decay);
  (match seed with Some s -> reseed t s | None -> ());
  (match polarity_mode with
   | Phase_saved -> ()
   | Phase_false -> Array.fill t.polarity 0 (Array.length t.polarity) false
   | Phase_true -> Array.fill t.polarity 0 (Array.length t.polarity) true
   | Phase_inverted ->
     for v = 0 to t.nvars - 1 do
       t.polarity.(v) <- not t.polarity.(v)
     done
   | Phase_random ->
     for v = 0 to t.nvars - 1 do
       t.polarity.(v) <- rand_bool t
     done);
  (* Perturb the decision order: bump a seeded sample of variables so equal
     (or near-equal) activities break ties differently on this attempt. *)
  if seed <> None && t.nvars > 0 then
    for _ = 1 to 1 + (t.nvars / 8) do
      var_bump t (rand_int t t.nvars)
    done

let solve ?(assumptions = []) ?budget ?seed ?(polarity_mode = Phase_saved)
    ?var_decay t =
  if not t.ok then begin
    t.core <- [];
    Unsat
  end
  else if
    match t.unsound with
    | Some (Force_unknown n) -> unsound_fires t n
    | _ -> false
  then begin
    (* Test-only fault: report an inconclusive verdict even though the
       search never ran.  Scrub like a genuine budget exhaustion. *)
    t.model <- [||];
    t.core <- [];
    Unknown
  end
  else begin
    apply_diversification t ~seed ~polarity_mode ~var_decay;
    set_budget_limits t budget;
    t.assumptions <- Array.of_list assumptions;
    t.max_learnts <- max 1000. (float_of_int (Vec.size t.clauses) *. 0.3);
    let rec loop restarts =
      let nof_conflicts = int_of_float (luby 2. restarts *. 100.) in
      match search t ~nof_conflicts with
      | Some r -> r
      | None -> loop (restarts + 1)
    in
    let r = loop 0 in
    cancel_until t 0;
    t.assumptions <- [||];
    set_budget_limits t None;
    (* An [Unknown] answer proves nothing: scrub the model and core so a
       caller cannot accidentally read state left over from an earlier
       [Sat]/[Unsat] call. *)
    if r = Unknown then begin
      t.model <- [||];
      t.core <- []
    end;
    r
  end

(* A conflict during assumption propagation inside [search] reaches
   [analyze] normally because assumption levels are ordinary decision
   levels; [analyze_final] is used only via [analyze_final_lit] and the
   level-0 case.  For conflicts whose learnt clause would be empty under
   assumptions, [record_learnt] enqueues at level [btlevel] which is >= the
   number of satisfied assumptions, so the standard machinery suffices. *)

let value t v =
  if v >= Array.length t.model then false else t.model.(v)

let lit_value t l =
  let b = value t (Lit.var l) in
  if Lit.is_neg l then not b else b

let model t = Array.copy t.model
let unsat_core t = t.core

let pp_stats ppf t =
  Fmt.pf ppf "vars=%d clauses=%d learnts=%d decisions=%d conflicts=%d props=%d restarts=%d"
    t.nvars (Vec.size t.clauses) (Vec.size t.learnts) t.n_decisions t.n_conflicts
    t.n_propagations t.n_restarts
