(* Independent certificate checker.

   Deliberately naive: plain arrays, occurrence lists and counter-based
   unit propagation with a trail for undo.  It shares the literal encoding
   with the solver (Lit) but none of its search machinery — no watched
   literals, no activity heap, no clause database heuristics — so a bug in
   the CDCL engine and a bug here would have to coincide to let a wrong
   verdict through.

   The checker maintains the clause set at "level 0": every time a clause
   is added, units are propagated persistently; [conflicted] latches once
   the clause set is refutable by unit propagation alone.  Each [Add] step
   is verified to be RUP — assuming the negation of the clause and
   propagating must yield a conflict — before it is admitted to the
   database.  A step that fails verification is reported and *not*
   admitted, so a corrupted trace can never help later steps pass. *)

type clause = {
  lits : Lit.t array;
  learnt : bool;
  mutable dead : bool;
}

type t = {
  mutable clauses : clause array;
  mutable n_clauses : int;
  mutable occ : int list array; (* literal -> ids of clauses containing it *)
  mutable assigns : int array; (* var -> 1 true, -1 false, 0 unassigned *)
  mutable trail : Lit.t array;
  mutable trail_len : int;
  mutable qhead : int;
  mutable conflicted : bool;
  index : (Lit.t list, int list ref) Hashtbl.t; (* live learnt clauses *)
  mutable replayed : int;
}

let dummy_clause = { lits = [||]; learnt = false; dead = true }

let create () =
  {
    clauses = Array.make 64 dummy_clause;
    n_clauses = 0;
    occ = Array.make 128 [];
    assigns = Array.make 64 0;
    trail = Array.make 64 0;
    trail_len = 0;
    qhead = 0;
    conflicted = false;
    index = Hashtbl.create 64;
    replayed = 0;
  }

(* --- growable state -------------------------------------------------------- *)

let ensure_var t v =
  let cap = Array.length t.assigns in
  if v >= cap then begin
    let cap' = max (2 * cap) (v + 1) in
    let assigns = Array.make cap' 0 in
    Array.blit t.assigns 0 assigns 0 cap;
    t.assigns <- assigns;
    let occ = Array.make (2 * cap') [] in
    Array.blit t.occ 0 occ 0 (Array.length t.occ);
    t.occ <- occ
  end

let value t l =
  let s = t.assigns.(Lit.var l) in
  if Lit.is_neg l then -s else s

let assign t l =
  t.assigns.(Lit.var l) <- (if Lit.is_neg l then -1 else 1);
  if t.trail_len = Array.length t.trail then begin
    let bigger = Array.make (2 * t.trail_len) 0 in
    Array.blit t.trail 0 bigger 0 t.trail_len;
    t.trail <- bigger
  end;
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1

(* Unwind the trail (and propagation queue) to a saved point. *)
let undo_to t saved =
  for i = t.trail_len - 1 downto saved do
    t.assigns.(Lit.var t.trail.(i)) <- 0
  done;
  t.trail_len <- saved;
  t.qhead <- saved

(* Propagate to fixpoint; true iff a conflict was found.  On conflict the
   queue is left mid-way — callers either undo or latch [conflicted]. *)
let propagate t =
  let conflict = ref false in
  while (not !conflict) && t.qhead < t.trail_len do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    let watch = t.occ.(Lit.neg p) in
    List.iter
      (fun cid ->
        if not !conflict then begin
          let c = t.clauses.(cid) in
          if not c.dead then begin
            let sat = ref false in
            let unassigned = ref [] in
            Array.iter
              (fun l ->
                match value t l with
                | 1 -> sat := true
                | 0 -> unassigned := l :: !unassigned
                | _ -> ())
              c.lits;
            if not !sat then
              match !unassigned with
              | [] -> conflict := true
              | [ l ] -> assign t l
              | _ -> ()
          end
        end)
      watch
  done;
  !conflict

let canon lits = List.sort_uniq Lit.compare (Array.to_list lits)

let add_clause_db t ~learnt lits =
  let lits = Array.of_list (canon lits) in
  Array.iter (fun l -> ensure_var t (Lit.var l)) lits;
  if t.n_clauses = Array.length t.clauses then begin
    let bigger = Array.make (2 * t.n_clauses) dummy_clause in
    Array.blit t.clauses 0 bigger 0 t.n_clauses;
    t.clauses <- bigger
  end;
  let id = t.n_clauses in
  t.clauses.(id) <- { lits; learnt; dead = false };
  t.n_clauses <- id + 1;
  Array.iter (fun l -> t.occ.(l) <- id :: t.occ.(l)) lits;
  if learnt then begin
    let key = Array.to_list lits in
    match Hashtbl.find_opt t.index key with
    | Some bucket -> bucket := id :: !bucket
    | None -> Hashtbl.add t.index key (ref [ id ])
  end;
  (* keep the level-0 closure current *)
  if not t.conflicted then begin
    let sat = ref false in
    let unassigned = ref [] in
    Array.iter
      (fun l ->
        match value t l with
        | 1 -> sat := true
        | 0 -> unassigned := l :: !unassigned
        | _ -> ())
      lits;
    if not !sat then
      match !unassigned with
      | [] -> t.conflicted <- true
      | [ l ] ->
        assign t l;
        if propagate t then t.conflicted <- true
      | _ -> ()
  end

let pp_lits ppf lits =
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:sp int) (List.map Lit.to_dimacs (Array.to_list lits))

(* RUP test: assume the negation of every literal of [lits] and propagate;
   the clause is implied iff this conflicts.  State is fully restored. *)
let is_rup t lits =
  Array.iter (fun l -> ensure_var t (Lit.var l)) lits;
  t.conflicted
  ||
  let saved = t.trail_len in
  let trivially = ref false in
  Array.iter
    (fun l ->
      match value t l with
      | 1 -> trivially := true (* satisfied at level 0: implied outright *)
      | 0 -> if not !trivially then assign t (Lit.neg l)
      | _ -> ())
    lits;
  let conflict = !trivially || propagate t in
  undo_to t saved;
  conflict

let replay t step =
  t.replayed <- t.replayed + 1;
  match step with
  | Proof.Input lits ->
    add_clause_db t ~learnt:false lits;
    Ok ()
  | Proof.Add [||] ->
    if t.conflicted then Ok ()
    else Error "empty clause is not derivable by unit propagation"
  | Proof.Add lits ->
    if is_rup t lits then begin
      add_clause_db t ~learnt:true lits;
      Ok ()
    end
    else Error (Fmt.str "learnt clause %a is not RUP" pp_lits lits)
  | Proof.Delete lits -> (
    let key = canon lits in
    match Hashtbl.find_opt t.index key with
    | Some bucket -> (
      match !bucket with
      | id :: rest ->
        t.clauses.(id).dead <- true;
        bucket := rest;
        Ok ()
      | [] -> Error (Fmt.str "deletion of already-deleted clause %a" pp_lits lits))
    | None -> Error (Fmt.str "deletion of unknown clause %a" pp_lits lits))

let steps_replayed t = t.replayed

(* Unsat verdict check: under the given assumptions, unit propagation over
   the replayed database must conflict.  State is fully restored. *)
let check_conflict t assumptions =
  List.iter (fun a -> ensure_var t (Lit.var a)) assumptions;
  if t.conflicted then Ok ()
  else begin
    let saved = t.trail_len in
    let conflict = ref false in
    List.iter
      (fun a ->
        if not !conflict then
          match value t a with
          | -1 -> conflict := true (* contradicts an established unit *)
          | 0 -> assign t a
          | _ -> ())
      assumptions;
    let conflict = !conflict || propagate t in
    undo_to t saved;
    if conflict then Ok ()
    else
      Error
        (Fmt.str "assumptions %a do not propagate to a conflict" pp_lits
           (Array.of_list assumptions))
  end

(* Sat verdict check: the valuation must satisfy every input clause. *)
let check_model t valuation =
  let bad = ref None in
  for i = 0 to t.n_clauses - 1 do
    let c = t.clauses.(i) in
    if (not c.learnt) && !bad = None && not (Array.exists valuation c.lits) then
      bad := Some c.lits
  done;
  match !bad with
  | None -> Ok ()
  | Some lits -> Error (Fmt.str "model falsifies input clause %a" pp_lits lits)

(* --- one-shot entry points -------------------------------------------------- *)

let replay_all t proof =
  let err = ref None in
  Proof.iter
    (fun step ->
      match replay t step with
      | Ok () -> ()
      | Error e -> if !err = None then err := Some e)
    proof;
  match !err with None -> Ok () | Some e -> Error e

let check_proof ?(assumptions = []) proof =
  let t = create () in
  match replay_all t proof with
  | Error e -> Error e
  | Ok () -> (
    match check_conflict t assumptions with
    | Ok () -> Ok (Proof.length proof)
    | Error e -> Error e)

let check_sat_model proof valuation =
  let t = create () in
  match replay_all t proof with
  | Error e -> Error e
  | Ok () -> (
    match check_model t valuation with
    | Ok () -> Ok (Proof.length proof)
    | Error e -> Error e)
